"""Configuration Loader.

"The Configuration Loader allows one to directly edit the parameters for data
generation" (Section 2).  This module defines the typed configuration schema
of a full generation run and loads/validates it from plain dictionaries or
JSON files, so that an entire pipeline run can be described declaratively::

    {
      "environment": {"building": "office", "floors": 2, "decompose": true},
      "devices": [{"type": "wifi", "count_per_floor": 6, "deployment": "coverage"}],
      "objects": {"count": 50, "duration": 600, "distribution": "crowd-outliers"},
      "rssi": {"sampling_period": 2.0, "fluctuation_sigma": 2.0},
      "positioning": {"method": "fingerprinting", "algorithm": "knn"}
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.core.errors import ConfigurationError
from repro.core.types import DeviceType, PositioningMethod


@dataclass
class EnvironmentConfig:
    """Where the host indoor environment comes from and how it is prepared."""

    building: str = "office"          # "office" | "mall" | "clinic" or an IFC path
    floors: int = 2
    ifc_path: Optional[str] = None
    decompose: bool = False
    max_partition_area: float = 120.0
    max_aspect_ratio: float = 3.0
    extract_semantics: bool = True

    def __post_init__(self) -> None:
        if self.floors < 1:
            raise ConfigurationError("environment.floors must be at least 1")
        if self.max_partition_area <= 0:
            raise ConfigurationError("environment.max_partition_area must be positive")
        if self.max_aspect_ratio < 1.0:
            raise ConfigurationError("environment.max_aspect_ratio must be >= 1")


@dataclass
class DeviceConfig:
    """One device-deployment instruction of the Infrastructure Layer."""

    device_type: DeviceType = DeviceType.WIFI
    count_per_floor: int = 6
    deployment: str = "coverage"       # "coverage" | "check-point"
    floors: Optional[List[int]] = None
    detection_range: Optional[float] = None
    detection_interval: Optional[float] = None

    def __post_init__(self) -> None:
        if self.count_per_floor <= 0:
            raise ConfigurationError("devices.count_per_floor must be positive")
        if self.deployment.lower().replace("_", "-") not in ("coverage", "check-point", "checkpoint"):
            raise ConfigurationError(
                f"devices.deployment must be 'coverage' or 'check-point', got {self.deployment!r}"
            )

    def overrides(self) -> Dict[str, float]:
        """Constructor overrides derived from the optional fields."""
        values: Dict[str, float] = {}
        if self.detection_range is not None:
            values["detection_range"] = self.detection_range
        if self.detection_interval is not None:
            values["detection_interval"] = self.detection_interval
        return values


@dataclass
class ObjectConfig:
    """Moving Object Layer configuration."""

    count: int = 50
    duration: float = 600.0
    min_speed: float = 0.8
    max_speed: float = 1.8
    min_lifespan: float = 300.0
    max_lifespan: float = 900.0
    sampling_period: float = 1.0
    time_step: float = 0.25
    distribution: str = "uniform"         # "uniform" | "crowd-outliers"
    crowd_count: int = 3
    crowd_fraction: float = 0.8
    arrival_rate_per_minute: float = 0.0  # 0 disables Poisson arrivals
    intention: str = "destination"        # "destination" | "random-way"
    behavior: str = "walk-stay"           # "walk-stay" | "continuous" | "variable-speed"
    routing: str = "length"               # "length" | "time"
    crowd_interaction: str = "none"       # "none" | "density-slowdown"
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ConfigurationError("objects.count must be non-negative")
        if self.duration <= 0:
            raise ConfigurationError("objects.duration must be positive")
        if self.sampling_period <= 0:
            raise ConfigurationError("objects.sampling_period must be positive")
        if self.routing not in ("length", "time"):
            raise ConfigurationError("objects.routing must be 'length' or 'time'")
        if self.arrival_rate_per_minute < 0:
            raise ConfigurationError("objects.arrival_rate_per_minute must be non-negative")


@dataclass
class RSSIConfig:
    """RSSI Measurement Controller configuration."""

    sampling_period: float = 2.0
    path_loss_exponent: Optional[float] = None
    calibration_rssi: Optional[float] = None
    wall_attenuation_db: float = 3.5
    fluctuation_sigma_db: float = 2.0
    detection_probability: float = 0.95
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.sampling_period <= 0:
            raise ConfigurationError("rssi.sampling_period must be positive")
        if self.fluctuation_sigma_db < 0:
            raise ConfigurationError("rssi.fluctuation_sigma_db must be non-negative")
        if not 0.0 < self.detection_probability <= 1.0:
            raise ConfigurationError("rssi.detection_probability must be in (0, 1]")


@dataclass
class PositioningLayerConfig:
    """Positioning Method Controller configuration."""

    method: PositioningMethod = PositioningMethod.TRILATERATION
    sampling_period: float = 5.0
    algorithm: str = "knn"                # fingerprinting: "knn" | "bayes"
    knn_k: int = 3
    bayes_top_k: int = 5
    min_devices: int = 3
    radio_map_spacing: float = 4.0
    radio_map_samples: int = 8
    rssi_threshold: Optional[float] = None

    def __post_init__(self) -> None:
        if self.sampling_period <= 0:
            raise ConfigurationError("positioning.sampling_period must be positive")
        if self.algorithm not in ("knn", "bayes"):
            raise ConfigurationError("positioning.algorithm must be 'knn' or 'bayes'")
        if self.radio_map_spacing <= 0:
            raise ConfigurationError("positioning.radio_map_spacing must be positive")


@dataclass
class StorageConfig:
    """Where the generated data is stored and how it is indexed.

    ``backend="memory"`` keeps the original volatile in-memory tables;
    ``backend="sqlite"`` persists every dataset to ``path`` (or an in-memory
    SQLite database when ``path`` is omitted) with WAL journalling, batched
    bulk inserts and composite + spatial grid-bucket indices.
    """

    backend: str = "memory"           # "memory" | "sqlite"
    path: Optional[str] = None        # SQLite database file (None = :memory:)
    #: Metres per spatial grid bucket; None keeps the engine default (4 m) or,
    #: when reopening an existing database, its stored bucket size.
    grid_cell_size: Optional[float] = None
    batch_size: int = 2000            # rows per bulk-insert batch
    #: Streaming generation flushes pending records to the backend whenever
    #: this many are buffered, bounding peak pending memory.
    flush_every: int = 5000

    def __post_init__(self) -> None:
        if self.backend.lower().strip() not in ("memory", "sqlite"):
            raise ConfigurationError(
                f"storage.backend must be 'memory' or 'sqlite', got {self.backend!r}"
            )
        self.backend = self.backend.lower().strip()
        if self.backend == "memory" and self.path is not None:
            raise ConfigurationError("storage.path only applies to the sqlite backend")
        if self.grid_cell_size is not None and self.grid_cell_size <= 0:
            raise ConfigurationError("storage.grid_cell_size must be positive")
        if self.batch_size < 1:
            raise ConfigurationError("storage.batch_size must be at least 1")
        if self.flush_every < 1:
            raise ConfigurationError("storage.flush_every must be at least 1")


@dataclass
class SpatialConfig:
    """Cache knobs of the per-building :class:`~repro.spatial.SpatialService`.

    Caching changes cost, never results: every cache verifies the exact
    query arguments before answering (see :mod:`repro.spatial.cache`), so
    any combination of these knobs produces record-identical output.

    Attributes:
        enabled: master switch; ``False`` recomputes every spatial answer
            from scratch (same algorithms, no memoization) — useful for
            benchmarking and for the cached-vs-uncached equivalence suite.
        route_cache_size: LRU capacity of the end-to-end route cache, keyed
            by (partition, quantized point, partition, quantized point,
            metric, speed).
        los_cache_size: LRU capacity of the line-of-sight cache, keyed by
            (floor, quantized origin, quantized target).
        locate_cache_size: LRU capacity of the point-location cache used
            when annotating coordinates with their partition.
        quantum: bucket resolution (metres) of the quantized cache keys.
            Coarser quanta reduce key diversity (distinct queries sharing a
            bucket evict each other); they never change answers.
    """

    enabled: bool = True
    route_cache_size: int = 4096
    los_cache_size: int = 16384
    locate_cache_size: int = 8192
    quantum: float = 1e-6

    def __post_init__(self) -> None:
        for name in ("route_cache_size", "los_cache_size", "locate_cache_size"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"spatial.{name} must be non-negative")
        if self.quantum <= 0:
            raise ConfigurationError("spatial.quantum must be positive")


@dataclass
class TelemetryConfig:
    """The ``telemetry:`` section: the run's observability switches.

    Disabled by default — the instrumented code paths then execute shared
    no-op instruments, so generated records, query results and (to within
    noise) wall clock are identical to an uninstrumented build.

    Attributes:
        enabled: master switch for the metrics registry and tracer.
        trace: record timed spans (only meaningful when ``enabled``);
            ``False`` keeps metrics but skips span bookkeeping.
        trace_capacity: ring-buffer size — a run retains at most this many
            finished spans and counts the rest as dropped.
        metrics_json: optional path; the pipeline writes the merged metrics
            registry there after a run (the CLI ``--metrics-json`` flag).
        trace_json: optional path for the span dump (``--trace-json``).
    """

    enabled: bool = False
    trace: bool = True
    trace_capacity: int = 4096
    metrics_json: Optional[str] = None
    trace_json: Optional[str] = None

    def __post_init__(self) -> None:
        if self.trace_capacity < 1:
            raise ConfigurationError("telemetry.trace_capacity must be at least 1")


@dataclass
class MonitorConfig:
    """One standing monitor of the ``monitors:`` configuration section.

    Declarative counterpart of the :class:`repro.live.Monitor` grammar: the
    ``monitor`` field names the kind and the remaining fields carry the
    kind's parameters.  Field-level validation happens here; the kind's
    cross-field requirements are enforced by :meth:`build` (which compiles
    to a :class:`~repro.live.Monitor`), keeping this module import-light.

    ``where`` holds textual ``'COLUMN<OP>VALUE'`` conditions or
    ``[column, op, value]`` triples, identical to the CLI ``--where`` syntax.
    """

    monitor: str = "density"            # density|flow|geofence|knn|visit_counts
    name: Optional[str] = None
    window: float = 60.0
    slide: Optional[float] = None
    floor: Optional[int] = None
    partition: Optional[str] = None
    region: Optional[List[float]] = None        # [min_x, min_y, max_x, max_y]
    from_partition: Optional[str] = None        # flow
    to_partition: Optional[str] = None          # flow
    x: Optional[float] = None                   # knn
    y: Optional[float] = None                   # knn
    k: int = 5                                  # knn
    top_k: int = 5                              # visit_counts
    alert_on: List[str] = field(default_factory=lambda: ["enter", "exit"])
    where: List[Any] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.monitor = self.monitor.lower().strip().replace("-", "_")
        if self.monitor not in ("density", "flow", "geofence", "knn", "visit_counts"):
            raise ConfigurationError(
                f"monitors[].monitor must be one of density, flow, geofence, "
                f"knn, visit_counts; got {self.monitor!r}"
            )
        if self.window <= 0:
            raise ConfigurationError("monitors[].window must be positive")
        if self.slide is not None and self.slide <= 0:
            raise ConfigurationError("monitors[].slide must be positive")
        if self.region is not None and len(self.region) != 4:
            raise ConfigurationError(
                "monitors[].region must be [min_x, min_y, max_x, max_y]"
            )

    def build(self):
        """Compile into a :class:`repro.live.Monitor` (full validation)."""
        # Local import: the live subsystem depends on the storage layer,
        # which this configuration module must stay independent of.
        from repro.core.errors import MonitorError
        from repro.live.monitors import Monitor

        try:
            kind = self.monitor
            if kind == "density":
                built = Monitor.density(
                    self.region, partition=self.partition, floor=self.floor
                )
            elif kind == "flow":
                if not (self.from_partition and self.to_partition):
                    raise MonitorError("flow needs 'from_partition' and 'to_partition'")
                built = Monitor.flow(self.from_partition, self.to_partition)
            elif kind == "geofence":
                if self.region is None:
                    raise MonitorError("geofence needs a 'region'")
                if self.floor is None:
                    raise MonitorError("geofence needs a 'floor'")
                built = Monitor.geofence(
                    self.region, floor=self.floor, on=tuple(self.alert_on)
                )
            elif kind == "knn":
                if self.x is None or self.y is None or self.floor is None:
                    raise MonitorError("knn needs 'x', 'y' and a 'floor'")
                built = Monitor.knn((self.x, self.y), k=self.k, floor=self.floor)
            else:
                built = Monitor.visit_counts(top_k=self.top_k)
            built = built.window(self.window)
            if self.slide is not None:
                built = built.slide(self.slide)
            if self.name:
                built = built.named(self.name)
            for condition in self.where:
                if isinstance(condition, str):
                    built = built.where(condition)
                else:
                    try:
                        column, op, value = condition
                    except (TypeError, ValueError):
                        raise MonitorError(
                            "where entries must be 'COLUMN<OP>VALUE' strings "
                            f"or [column, op, value] triples, got {condition!r}"
                        )
                    built = built.where(column, op, value)
            return built
        except MonitorError as error:
            raise ConfigurationError(f"monitors[]: {error}")


@dataclass
class VitaConfig:
    """The complete configuration of one generation run.

    ``shards`` fixes the deterministic partition of the moving objects used
    by streaming generation (``None`` derives it from the object count), and
    ``workers`` sets how many processes run those shards concurrently.  The
    streamed output depends on ``shards`` but never on ``workers``.
    """

    environment: EnvironmentConfig = field(default_factory=EnvironmentConfig)
    devices: List[DeviceConfig] = field(default_factory=lambda: [DeviceConfig()])
    objects: ObjectConfig = field(default_factory=ObjectConfig)
    rssi: RSSIConfig = field(default_factory=RSSIConfig)
    positioning: PositioningLayerConfig = field(default_factory=PositioningLayerConfig)
    storage: StorageConfig = field(default_factory=StorageConfig)
    spatial: SpatialConfig = field(default_factory=SpatialConfig)
    telemetry: TelemetryConfig = field(default_factory=TelemetryConfig)
    monitors: List[MonitorConfig] = field(default_factory=list)
    seed: Optional[int] = None
    workers: int = 1
    shards: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.devices:
            raise ConfigurationError("at least one device deployment must be configured")
        if self.workers < 1:
            raise ConfigurationError("workers must be at least 1")
        if self.shards is not None and self.shards < 1:
            raise ConfigurationError("shards must be at least 1")
        # Propagate the top-level seed to the sub-configurations that accept one.
        if self.seed is not None:
            if self.objects.seed is None:
                self.objects.seed = self.seed
            if self.rssi.seed is None:
                self.rssi.seed = self.seed + 1


# --------------------------------------------------------------------------- #
# Loading from dictionaries / JSON
# --------------------------------------------------------------------------- #
_DEVICE_TYPE_ALIASES = {
    "wifi": DeviceType.WIFI,
    "wi-fi": DeviceType.WIFI,
    "bluetooth": DeviceType.BLUETOOTH,
    "ble": DeviceType.BLUETOOTH,
    "rfid": DeviceType.RFID,
}

_METHOD_ALIASES = {
    "trilateration": PositioningMethod.TRILATERATION,
    "fingerprinting": PositioningMethod.FINGERPRINTING,
    "proximity": PositioningMethod.PROXIMITY,
}


def _only_known_keys(section: str, payload: Dict[str, Any], known: Sequence[str]) -> None:
    unknown = [key for key in payload if key not in known]
    if unknown:
        raise ConfigurationError(f"{section}: unknown configuration keys {unknown}")


def _parse_device(payload: Dict[str, Any]) -> DeviceConfig:
    _only_known_keys(
        "devices[]", payload,
        ("type", "count_per_floor", "deployment", "floors", "detection_range", "detection_interval"),
    )
    type_name = str(payload.get("type", "wifi")).lower()
    if type_name not in _DEVICE_TYPE_ALIASES:
        raise ConfigurationError(f"devices[].type: unknown device type {type_name!r}")
    return DeviceConfig(
        device_type=_DEVICE_TYPE_ALIASES[type_name],
        count_per_floor=int(payload.get("count_per_floor", 6)),
        deployment=str(payload.get("deployment", "coverage")),
        floors=list(payload["floors"]) if payload.get("floors") is not None else None,
        detection_range=payload.get("detection_range"),
        detection_interval=payload.get("detection_interval"),
    )


def config_from_dict(payload: Dict[str, Any]) -> VitaConfig:
    """Build a validated :class:`VitaConfig` from a plain dictionary."""
    _only_known_keys(
        "config", payload,
        ("environment", "devices", "objects", "rssi", "positioning", "storage",
         "spatial", "telemetry", "monitors", "seed", "workers", "shards"),
    )
    environment_payload = dict(payload.get("environment", {}))
    _only_known_keys(
        "environment", environment_payload,
        ("building", "floors", "ifc_path", "decompose", "max_partition_area",
         "max_aspect_ratio", "extract_semantics"),
    )
    environment = EnvironmentConfig(**environment_payload)

    device_payloads = payload.get("devices", [{}])
    if isinstance(device_payloads, dict):
        device_payloads = [device_payloads]
    devices = [_parse_device(dict(item)) for item in device_payloads]

    object_payload = dict(payload.get("objects", {}))
    _only_known_keys(
        "objects", object_payload,
        ("count", "duration", "min_speed", "max_speed", "min_lifespan", "max_lifespan",
         "sampling_period", "time_step", "distribution", "crowd_count", "crowd_fraction",
         "arrival_rate_per_minute", "intention", "behavior", "routing",
         "crowd_interaction", "seed"),
    )
    objects = ObjectConfig(**object_payload)

    rssi_payload = dict(payload.get("rssi", {}))
    _only_known_keys(
        "rssi", rssi_payload,
        ("sampling_period", "path_loss_exponent", "calibration_rssi",
         "wall_attenuation_db", "fluctuation_sigma_db", "detection_probability", "seed"),
    )
    rssi = RSSIConfig(**rssi_payload)

    positioning_payload = dict(payload.get("positioning", {}))
    _only_known_keys(
        "positioning", positioning_payload,
        ("method", "sampling_period", "algorithm", "knn_k", "bayes_top_k",
         "min_devices", "radio_map_spacing", "radio_map_samples", "rssi_threshold"),
    )
    if "method" in positioning_payload:
        method_name = str(positioning_payload["method"]).lower()
        if method_name not in _METHOD_ALIASES:
            raise ConfigurationError(f"positioning.method: unknown method {method_name!r}")
        positioning_payload["method"] = _METHOD_ALIASES[method_name]
    positioning = PositioningLayerConfig(**positioning_payload)

    storage_payload = dict(payload.get("storage", {}))
    _only_known_keys(
        "storage", storage_payload,
        ("backend", "path", "grid_cell_size", "batch_size", "flush_every"),
    )
    storage = StorageConfig(**storage_payload)

    spatial_payload = dict(payload.get("spatial", {}))
    _only_known_keys(
        "spatial", spatial_payload,
        ("enabled", "route_cache_size", "los_cache_size", "locate_cache_size",
         "quantum"),
    )
    spatial = SpatialConfig(**spatial_payload)

    telemetry_payload = dict(payload.get("telemetry", {}))
    _only_known_keys(
        "telemetry", telemetry_payload,
        ("enabled", "trace", "trace_capacity", "metrics_json", "trace_json"),
    )
    telemetry = TelemetryConfig(**telemetry_payload)

    monitor_payloads = payload.get("monitors", [])
    if isinstance(monitor_payloads, dict):
        monitor_payloads = [monitor_payloads]
    monitors = [_parse_monitor(dict(item)) for item in monitor_payloads]

    return VitaConfig(
        environment=environment,
        devices=devices,
        objects=objects,
        rssi=rssi,
        positioning=positioning,
        storage=storage,
        spatial=spatial,
        telemetry=telemetry,
        monitors=monitors,
        seed=payload.get("seed"),
        workers=int(payload.get("workers", 1)),
        shards=int(payload["shards"]) if payload.get("shards") is not None else None,
    )


def _parse_monitor(payload: Dict[str, Any]) -> MonitorConfig:
    _only_known_keys(
        "monitors[]", payload,
        ("monitor", "name", "window", "slide", "floor", "partition", "region",
         "from", "to", "from_partition", "to_partition", "x", "y", "k",
         "top_k", "alert_on", "where"),
    )
    # "from"/"to" are the natural JSON spellings of the flow endpoints but
    # are keywords/ambiguous as Python field names.
    if "from" in payload:
        payload["from_partition"] = payload.pop("from")
    if "to" in payload:
        payload["to_partition"] = payload.pop("to")
    config = MonitorConfig(**payload)
    config.build()  # surface cross-field errors at load time
    return config


def config_from_json(path: Union[str, Path]) -> VitaConfig:
    """Load and validate a :class:`VitaConfig` from a JSON file."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise ConfigurationError(f"{path}: invalid JSON ({error})")
    if not isinstance(payload, dict):
        raise ConfigurationError(f"{path}: the top-level JSON value must be an object")
    return config_from_dict(payload)


__all__ = [
    "EnvironmentConfig",
    "DeviceConfig",
    "ObjectConfig",
    "RSSIConfig",
    "PositioningLayerConfig",
    "StorageConfig",
    "SpatialConfig",
    "TelemetryConfig",
    "MonitorConfig",
    "VitaConfig",
    "config_from_dict",
    "config_from_json",
]
