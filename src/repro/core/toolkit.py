"""The ``Vita`` facade: the step-by-step API of the demonstration path.

Section 5 summarises the system operations as a common six-step path:

1. import a DBI file;
2. view and modify the host indoor environment;
3. configure and generate indoor positioning devices;
4. configure and generate indoor moving objects;
5. configure and generate raw RSSI measurements;
6. choose and configure a positioning method and generate positioning data.

:class:`Vita` exposes exactly those steps as methods, keeping the intermediate
state (building, devices, trajectories, RSSI data) so that each step can be
re-run with different parameters — just like the GUI tabs of the prototype.
For one-shot declarative runs, use :class:`~repro.core.pipeline.VitaPipeline`
with a :class:`~repro.core.config.VitaConfig` instead.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.building.editor import IndoorEnvironmentController
from repro.building.model import Building
from repro.building.semantics import SemanticExtractor
from repro.building.synthetic import building_by_name
from repro.core.config import VitaConfig
from repro.core.errors import VitaError
from repro.core.streaming import ProgressCallback
from repro.core.types import (
    DeviceType,
    PositioningMethod,
    PositioningRecord,
    ProbabilisticPositioningRecord,
    RSSIRecord,
)
from repro.devices.base import PositioningDevice
from repro.devices.controller import DeviceDeploymentRequest, PositioningDeviceController
from repro.devices.deployment import deployment_model_by_name
from repro.ifc.extractor import DBIProcessor, DBIProcessorOptions, ExtractionReport
from repro.mobility.behavior import behavior_by_name
from repro.mobility.controller import MovingObjectController, ObjectGenerationConfig
from repro.mobility.crowd import crowd_model_by_name
from repro.mobility.distributions import (
    CrowdOutliersDistribution,
    NoArrivals,
    PoissonArrivals,
    UniformDistribution,
)
from repro.mobility.engine import SimulationResult
from repro.mobility.intentions import intention_by_name
from repro.positioning.controller import PositioningConfig, PositioningMethodController
from repro.positioning.fingerprinting import RadioMap
from repro.rssi.measurement import RSSIGenerationConfig, RSSIGenerator
from repro.rssi.noise import FluctuationNoiseModel, ObstacleNoiseModel
from repro.spatial import SpatialService
from repro.storage.backends import StorageBackend, backend_by_name
from repro.storage.export import export_warehouse
from repro.storage.query import Query
from repro.storage.repositories import DataWarehouse
from repro.storage.stream import DataStreamAPI


class Vita:
    """The toolkit facade following the six-step demonstration path."""

    def __init__(
        self,
        seed: Optional[int] = None,
        backend: Union[StorageBackend, str, None] = None,
        db_path: Union[str, Path, None] = None,
    ) -> None:
        """*backend* selects the storage engine ("memory" by default); pass
        ``backend="sqlite", db_path="run.sqlite"`` to persist every generated
        dataset to disk.  Like a pipeline run, a ``Vita`` session owns its
        database: an existing file at *db_path* is cleared.  To query an
        existing database without regenerating, use
        :meth:`repro.storage.DataWarehouse.open` instead."""
        self.seed = seed
        self.building: Optional[Building] = None
        self.extraction_report: Optional[ExtractionReport] = None
        self.environment_controller: Optional[IndoorEnvironmentController] = None
        self.device_controller: Optional[PositioningDeviceController] = None
        self._spatial: Optional[SpatialService] = None
        self.simulation: Optional[SimulationResult] = None
        self.rssi_records: List[RSSIRecord] = []
        self.radio_map: Optional[RadioMap] = None
        self.positioning_output: list = []
        self._rssi_config: Optional[RSSIGenerationConfig] = None
        self._stream_api: Optional[DataStreamAPI] = None
        self._monitors: list = []
        #: The finalized live report of the most recent monitored run.
        self.live_report = None
        #: Telemetry snapshot of the most recent :meth:`generate` run
        #: (``{"enabled": False}`` until a run with ``telemetry.enabled``).
        self.telemetry: Dict = {"enabled": False}
        if backend is None and db_path is not None:
            backend = "sqlite"
        if isinstance(backend, str):
            backend = backend_by_name(backend, path=db_path)
        self.warehouse = DataWarehouse(backend)
        if self.warehouse.backend.persistent:
            self.warehouse.clear()

    # ------------------------------------------------------------------ #
    # Step 1 — import a DBI file (or use a synthetic building)
    # ------------------------------------------------------------------ #
    def import_dbi(self, path: Union[str, Path], decompose: bool = False) -> Building:
        """Import an IFC (DBI) file and construct the host indoor environment."""
        options = DBIProcessorOptions(decompose_partitions=decompose)
        building, report = DBIProcessor(options).process_file(str(path))
        self.extraction_report = report
        return self._adopt_building(building)

    def use_synthetic_building(self, name: str = "office", floors: int = 2) -> Building:
        """Use one of the built-in synthetic buildings (office, mall, clinic)."""
        building = building_by_name(name, floors=floors)
        SemanticExtractor().annotate_building(building)
        return self._adopt_building(building)

    def use_building(self, building: Building) -> Building:
        """Use an externally constructed building model."""
        return self._adopt_building(building)

    def _adopt_building(self, building: Building) -> Building:
        self.building = building
        self.environment_controller = IndoorEnvironmentController(building)
        self.device_controller = PositioningDeviceController(building, seed=self.seed)
        self._spatial = SpatialService(building)
        return building

    @property
    def spatial(self) -> SpatialService:
        """The session's cached spatial service (one per adopted building).

        Shared by steps 4–6 so routes, sight lines and point locations are
        computed once; environment edits are detected through the building's
        mutation counter and invalidate the caches automatically.
        """
        self._require_building()
        return self._spatial

    # ------------------------------------------------------------------ #
    # Step 2 — view and modify the host indoor environment
    # ------------------------------------------------------------------ #
    @property
    def environment(self) -> IndoorEnvironmentController:
        """The Indoor Environment Controller (decompose, obstacles, door direction)."""
        self._require_building()
        return self.environment_controller

    # ------------------------------------------------------------------ #
    # Step 3 — configure and generate indoor positioning devices
    # ------------------------------------------------------------------ #
    def deploy_devices(
        self,
        device_type: Union[DeviceType, str] = DeviceType.WIFI,
        count_per_floor: int = 6,
        deployment: str = "coverage",
        floors: Optional[Sequence[int]] = None,
        **overrides,
    ) -> List[PositioningDevice]:
        """Deploy positioning devices with a deployment model."""
        self._require_building()
        if isinstance(device_type, str):
            device_type = DeviceType(device_type.lower())
        devices = self.device_controller.deploy(
            DeviceDeploymentRequest(
                device_type=device_type,
                count_per_floor=count_per_floor,
                model=deployment_model_by_name(deployment),
                floor_ids=floors,
                overrides=overrides,
            )
        )
        self.spatial.attach_devices(self.devices)
        self.warehouse.devices.add_many(device.as_record() for device in devices)
        self.warehouse.flush()
        return devices

    @property
    def devices(self) -> List[PositioningDevice]:
        """Every deployed positioning device."""
        if self.device_controller is None:
            return []
        return list(self.device_controller.devices.values())

    # ------------------------------------------------------------------ #
    # Step 4 — configure and generate indoor moving objects
    # ------------------------------------------------------------------ #
    def generate_objects(
        self,
        count: int = 50,
        duration: float = 600.0,
        sampling_period: float = 1.0,
        max_speed: float = 1.8,
        min_lifespan: float = 300.0,
        max_lifespan: float = 900.0,
        distribution: str = "uniform",
        intention: str = "destination",
        behavior: str = "walk-stay",
        routing: str = "length",
        arrival_rate_per_minute: float = 0.0,
        crowd_interaction: str = "none",
        time_step: float = 0.25,
        snapshot_times: Optional[List[float]] = None,
    ) -> SimulationResult:
        """Generate moving objects and their raw ("ground truth") trajectories."""
        self._require_building()
        if distribution.lower().replace("_", "-") in ("crowd-outliers", "crowdoutliers"):
            initial = CrowdOutliersDistribution(
                hot_partition_tags=("shop", "canteen", "public_area")
            )
        else:
            initial = UniformDistribution()
        arrivals = (
            PoissonArrivals(rate_per_minute=arrival_rate_per_minute)
            if arrival_rate_per_minute > 0
            else NoArrivals()
        )
        controller = MovingObjectController(
            self.building,
            config=ObjectGenerationConfig(
                count=count,
                max_speed=max_speed,
                min_lifespan=min_lifespan,
                max_lifespan=max_lifespan,
                duration=duration,
                sampling_period=sampling_period,
                time_step=time_step,
                routing_metric=routing,
                seed=self.seed,
            ),
            distribution=initial,
            arrival_process=arrivals,
            intention=intention_by_name(intention),
            behavior=behavior_by_name(behavior),
            crowd_model=crowd_model_by_name(crowd_interaction),
            spatial=self.spatial,
        )
        self.simulation = controller.generate(snapshot_times=snapshot_times)
        # Re-running a step replaces its output (the GUI-tab semantics);
        # appending would violate the warehouse's (object_id, t) uniqueness.
        self.warehouse.backend.clear("trajectory")
        self.warehouse.trajectories.add_trajectory_set(self.simulation.trajectories)
        self.warehouse.flush()
        return self.simulation

    # ------------------------------------------------------------------ #
    # Step 5 — configure and generate raw RSSI measurements
    # ------------------------------------------------------------------ #
    def generate_rssi(
        self,
        sampling_period: float = 2.0,
        fluctuation_sigma_db: float = 2.0,
        wall_attenuation_db: float = 3.5,
        detection_probability: float = 0.95,
    ) -> List[RSSIRecord]:
        """Generate raw RSSI measurement data from the trajectories and devices."""
        self._require_building()
        if self.simulation is None:
            raise VitaError("generate moving objects (step 4) before generating RSSI data")
        if not self.devices:
            raise VitaError("deploy positioning devices (step 3) before generating RSSI data")
        config = RSSIGenerationConfig(
            sampling_period=sampling_period,
            obstacle_noise=ObstacleNoiseModel(wall_attenuation_db=wall_attenuation_db),
            fluctuation_noise=FluctuationNoiseModel(sigma_db=fluctuation_sigma_db),
            detection_probability=detection_probability,
            seed=self.seed,
        )
        generator = RSSIGenerator(self.building, self.devices, config, spatial=self.spatial)
        self.rssi_records = generator.generate(self.simulation.trajectories)
        self.warehouse.backend.clear("rssi")  # a re-run replaces the step's output
        self.warehouse.rssi.add_many(self.rssi_records)
        self.warehouse.flush()
        self._rssi_config = config
        return self.rssi_records

    # ------------------------------------------------------------------ #
    # Session lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Flush and release the warehouse's storage backend.

        A persistent (SQLite) session holds an open database connection;
        closing makes the file durable and reusable by other processes.
        Prefer the context-manager form::

            with Vita(backend="sqlite", db_path="run.sqlite") as vita:
                ...
        """
        self.warehouse.close()

    def __enter__(self) -> "Vita":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Step 6 — choose a positioning method and generate positioning data
    # ------------------------------------------------------------------ #
    def generate_positioning(
        self,
        method: Union[PositioningMethod, str] = PositioningMethod.TRILATERATION,
        sampling_period: float = 5.0,
        algorithm: str = "knn",
        radio_map_spacing: float = 4.0,
        radio_map_samples: int = 8,
        **method_options,
    ) -> list:
        """Generate indoor positioning data from the raw RSSI data."""
        self._require_building()
        if not self.rssi_records:
            raise VitaError("generate raw RSSI data (step 5) before positioning data")
        if isinstance(method, str):
            method = PositioningMethod(method.lower())
        radio_map = None
        if method is PositioningMethod.FINGERPRINTING:
            survey_config = self._rssi_config or RSSIGenerationConfig(seed=self.seed)
            generator = RSSIGenerator(
                self.building, self.devices, survey_config, spatial=self.spatial
            )
            radio_map = RadioMap.survey_grid(
                self.building,
                generator,
                spacing=radio_map_spacing,
                samples_per_location=radio_map_samples,
            )
            self.radio_map = radio_map
        controller = PositioningMethodController(
            self.building,
            self.devices,
            PositioningConfig(
                method=method,
                sampling_period=sampling_period,
                fingerprinting_algorithm=algorithm,
                **method_options,
            ),
            radio_map=radio_map,
            spatial=self.spatial,
        )
        self.positioning_output = controller.generate(self.rssi_records)
        # A re-run replaces the positioning step's previous output.
        for dataset in ("positioning", "probabilistic", "proximity"):
            self.warehouse.backend.clear(dataset)
        for record in self.positioning_output:
            if isinstance(record, PositioningRecord):
                self.warehouse.positioning.add(record)
            elif isinstance(record, ProbabilisticPositioningRecord):
                self.warehouse.probabilistic.add(record)
            else:
                self.warehouse.proximity.add(record)
        self.warehouse.flush()
        return self.positioning_output

    # ------------------------------------------------------------------ #
    # One-shot streaming generation
    # ------------------------------------------------------------------ #
    def generate(
        self,
        config: Optional[VitaConfig] = None,
        *,
        workers: Optional[int] = None,
        shards: Optional[int] = None,
        flush_every: Optional[int] = None,
        progress: Optional[ProgressCallback] = None,
        on_alert=None,
    ):
        """Run the streaming, sharded pipeline into this session's warehouse.

        The one-shot counterpart of the six step methods: the moving objects
        are partitioned into deterministic shards, each shard runs the full
        object -> trajectory -> RSSI -> positioning chain (across ``workers``
        processes when ``workers > 1``) and records are flushed to the
        session's storage backend in batches of ``flush_every``.  For a fixed
        seed and shard count the stored records are identical for any
        ``workers`` value.  Any datasets previously generated in this
        session are replaced.

        Returns the
        :class:`~repro.core.pipeline.StreamingGenerationResult`; its
        ``report`` carries the master seed, per-dataset record counts and
        throughput of the run.  When ``config.telemetry.enabled`` the run's
        metrics/trace snapshot also lands on :attr:`telemetry`.
        """
        from repro.core.pipeline import VitaPipeline  # local import breaks the cycle

        if config is None:
            config = VitaConfig(seed=self.seed)
        # The session's warehouse wins over config.storage's engine choice.
        # Refuse rather than silently drop an explicitly requested persistent
        # target into a volatile session warehouse.
        if config.storage.backend == "sqlite" and not self.warehouse.backend.persistent:
            raise VitaError(
                "the configuration asks for the sqlite backend but this Vita "
                "session stores to memory; construct "
                "Vita(backend='sqlite', db_path=...) or run "
                "VitaPipeline(config).run_streaming() instead"
            )
        result = VitaPipeline(config).run_streaming(
            warehouse=self.warehouse,
            workers=workers,
            shards=shards,
            flush_every=flush_every,
            progress=progress,
            monitors=self._monitors,
            on_alert=on_alert,
        )
        self.live_report = result.live
        self.telemetry = result.report.telemetry
        # Adopt the run's environment so the step-wise API (environment
        # editing, further deployments, queries) continues from it.
        self._adopt_building(result.building)
        self.device_controller.devices.update(
            {device.device_id: device for device in result.devices}
        )
        self.simulation = None
        self.rssi_records = []
        self.positioning_output = []
        self.radio_map = result.radio_map
        return result

    # ------------------------------------------------------------------ #
    # Continuous queries (standing monitors)
    # ------------------------------------------------------------------ #
    def monitor(self, *monitors) -> list:
        """Register standing :class:`~repro.live.Monitor` subscriptions.

        Registered monitors attach to the next :meth:`generate` call (their
        finalized report lands on :attr:`live_report` and on the result's
        ``live`` attribute), and :meth:`replay_monitors` evaluates them over
        whatever the session warehouse already stores.  Returns the full
        list of registered monitors.
        """
        from repro.live.monitors import Monitor  # local: optional subsystem

        for monitor in monitors:
            if not isinstance(monitor, Monitor):
                raise VitaError(
                    "monitor() takes repro.live.Monitor instances, e.g. "
                    "Monitor.density(floor=1).window(60)"
                )
            monitor.plan()  # validate eagerly, before any run starts
            self._monitors.append(monitor)
        return list(self._monitors)

    def replay_monitors(self, monitors=None, *, on_alert=None):
        """Replay registered (or given) monitors over the session warehouse.

        The offline drive mode: scans the stored datasets back out through
        the query planner and feeds the same incremental engine a live run
        uses, so the emitted windows are identical to an attached run over
        the same data.  Returns the :class:`~repro.live.LiveReport`.
        """
        from repro.live.replay import replay  # local: optional subsystem

        chosen = list(monitors) if monitors is not None else list(self._monitors)
        if not chosen:
            raise VitaError("no monitors registered; call monitor() first")
        self.live_report = replay(
            self.warehouse, chosen, spatial=self._spatial, on_alert=on_alert
        )
        return self.live_report

    # ------------------------------------------------------------------ #
    # Data access and export
    # ------------------------------------------------------------------ #
    @property
    def stream_api(self) -> DataStreamAPI:
        """Data Stream APIs over everything generated so far (cached)."""
        if self._stream_api is None:
            self._stream_api = DataStreamAPI(self.warehouse)
        return self._stream_api

    def query(self, dataset: str) -> Query:
        """A composable builder query over one generated dataset.

        The generic counterpart of the fixed :attr:`stream_api` methods::

            vita.query("trajectory").during(0, 60).on_floor(1).count_by("partition_id")
        """
        return self.warehouse.query(dataset)

    def export(self, directory: Union[str, Path]) -> Dict[str, str]:
        """Export every generated dataset to CSV/JSON files in *directory*.

        Reads back through the repositories, so it works identically on the
        memory and SQLite backends.
        """
        written = export_warehouse(self.warehouse, directory)
        return {name: str(path) for name, path in written.items()}

    def summary(self) -> Dict[str, int]:
        """Record counts of everything generated so far."""
        return self.warehouse.summary()

    def _require_building(self) -> None:
        if self.building is None:
            raise VitaError(
                "no host indoor environment loaded; call import_dbi() or "
                "use_synthetic_building() first (step 1)"
            )


__all__ = ["Vita"]
