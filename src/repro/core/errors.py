"""Exception hierarchy for the Vita toolkit.

Every error raised by the toolkit derives from :class:`VitaError` so that
callers can catch a single base class.  Sub-classes are organised by the
pipeline layer that raises them (interface / infrastructure / moving-object /
positioning / storage).
"""

from __future__ import annotations


class VitaError(Exception):
    """Base class for all errors raised by the Vita toolkit."""


class ConfigurationError(VitaError):
    """A user-supplied configuration value is missing, malformed or out of range."""


class DBIError(VitaError):
    """Base class for errors raised while processing digital building information."""


class IFCParseError(DBIError):
    """The IFC (STEP-SPF) file could not be tokenised or parsed."""

    def __init__(self, message: str, line: int | None = None) -> None:
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class IFCExtractionError(DBIError):
    """The parsed IFC entities could not be turned into a building model."""


class TopologyError(DBIError):
    """The indoor topology is inconsistent (e.g. a door references a missing partition)."""


class GeometryError(VitaError):
    """An invalid geometric primitive was supplied (e.g. a degenerate polygon)."""


class DeploymentError(VitaError):
    """Positioning devices could not be deployed with the requested model/parameters."""


class MovementError(VitaError):
    """Moving-object generation failed (e.g. no route exists between two partitions)."""


class RoutingError(MovementError):
    """No route could be found between the requested indoor locations."""


class PositioningError(VitaError):
    """A positioning method could not produce an estimate from the raw RSSI data."""


class RadioMapError(PositioningError):
    """The fingerprinting radio map is missing, empty or incompatible with the query."""


class StorageError(VitaError):
    """A repository or Data-Stream-API operation failed."""


class MonitorError(VitaError):
    """A continuous-query monitor is malformed or was driven incorrectly."""
