"""Common value types shared by every layer of the Vita pipeline.

The paper (Section 4.2) stores all generated records with a location ``loc``
composed of a ``buildingID + floorID`` prefix followed by either a
``partitionID`` or a coordinate point.  :class:`IndoorLocation` models exactly
that.  The remaining record types mirror the storage formats listed in the
paper:

* raw trajectory records ``(o_id, loc, t)``,
* raw RSSI measurements ``(o_id, d_id, rssi)`` (we also keep the timestamp),
* deterministic positioning records ``(o_id, loc, t)``,
* probabilistic positioning records ``(o_id, {(loc_i, prob_i)}, t)``,
* proximity records ``(o_id, d_id, ts, te)``.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

ObjectId = str
DeviceId = str
PartitionId = str
BuildingId = str
FloorId = int
Timestamp = float


class DeviceType(enum.Enum):
    """Positioning-device technologies supported by the Infrastructure Layer."""

    WIFI = "wifi"
    BLUETOOTH = "bluetooth"
    RFID = "rfid"


class PositioningMethod(enum.Enum):
    """Indoor positioning methods supported by the Positioning Layer."""

    TRILATERATION = "trilateration"
    FINGERPRINTING = "fingerprinting"
    PROXIMITY = "proximity"


#: Which positioning methods are applicable to which device technology.
#: The demonstration section of the paper states that all three methods apply
#: to Wi-Fi, whereas fingerprinting is not offered for RFID and Bluetooth.
METHOD_COMPATIBILITY = {
    DeviceType.WIFI: (
        PositioningMethod.TRILATERATION,
        PositioningMethod.FINGERPRINTING,
        PositioningMethod.PROXIMITY,
    ),
    DeviceType.BLUETOOTH: (
        PositioningMethod.TRILATERATION,
        PositioningMethod.PROXIMITY,
    ),
    DeviceType.RFID: (
        PositioningMethod.PROXIMITY,
        PositioningMethod.TRILATERATION,
    ),
}


def method_applies_to(method: PositioningMethod, device_type: DeviceType) -> bool:
    """Return ``True`` if *method* can be used with devices of *device_type*."""
    return method in METHOD_COMPATIBILITY[device_type]


@dataclass(frozen=True)
class IndoorLocation:
    """A location inside a building.

    ``building_id`` and ``floor_id`` are always present.  At least one of
    ``partition_id`` and ``(x, y)`` is present; both may be set when the exact
    coordinate and its enclosing partition are known.
    """

    building_id: BuildingId
    floor_id: FloorId
    partition_id: Optional[PartitionId] = None
    x: Optional[float] = None
    y: Optional[float] = None

    def __post_init__(self) -> None:
        if self.partition_id is None and (self.x is None or self.y is None):
            raise ValueError(
                "IndoorLocation requires a partition_id or an (x, y) coordinate"
            )

    @property
    def has_point(self) -> bool:
        """Whether this location carries an exact coordinate."""
        return self.x is not None and self.y is not None

    @property
    def is_symbolic(self) -> bool:
        """Whether this location is purely symbolic (partition only)."""
        return not self.has_point

    def point(self) -> Tuple[float, float]:
        """Return the coordinate as an ``(x, y)`` tuple.

        Raises:
            ValueError: if the location is symbolic.
        """
        if not self.has_point:
            raise ValueError("location %r has no coordinate point" % (self,))
        return (float(self.x), float(self.y))

    def distance_to(self, other: "IndoorLocation", floor_penalty: float = 0.0) -> float:
        """Euclidean distance to *other*, adding *floor_penalty* per floor apart.

        This is a convenience used by accuracy metrics; precise indoor walking
        distances are computed by :mod:`repro.building.distance`.
        """
        if not (self.has_point and other.has_point):
            raise ValueError("both locations need coordinates to compute a distance")
        dx = float(self.x) - float(other.x)
        dy = float(self.y) - float(other.y)
        planar = math.hypot(dx, dy)
        return planar + abs(self.floor_id - other.floor_id) * floor_penalty

    def with_partition(self, partition_id: PartitionId) -> "IndoorLocation":
        """Return a copy of this location annotated with *partition_id*."""
        return IndoorLocation(
            building_id=self.building_id,
            floor_id=self.floor_id,
            partition_id=partition_id,
            x=self.x,
            y=self.y,
        )

    def as_record(self) -> dict:
        """Serialise the location as a flat dictionary (for CSV/JSON export)."""
        return {
            "building_id": self.building_id,
            "floor_id": self.floor_id,
            "partition_id": self.partition_id,
            "x": self.x,
            "y": self.y,
        }

    @classmethod
    def from_record(cls, record: dict) -> "IndoorLocation":
        """Inverse of :meth:`as_record`."""
        return cls(
            building_id=record["building_id"],
            floor_id=int(record["floor_id"]),
            partition_id=record.get("partition_id") or None,
            x=None if record.get("x") in (None, "") else float(record["x"]),
            y=None if record.get("y") in (None, "") else float(record["y"]),
        )


@dataclass(frozen=True)
class TrajectoryRecord:
    """A raw ("ground truth") trajectory sample ``(o_id, loc, t)``."""

    object_id: ObjectId
    location: IndoorLocation
    t: Timestamp

    def as_record(self) -> dict:
        row = {"object_id": self.object_id, "t": self.t}
        row.update(self.location.as_record())
        return row


@dataclass(frozen=True)
class RSSIRecord:
    """A raw RSSI measurement ``(o_id, d_id, rssi)`` taken at time ``t``."""

    object_id: ObjectId
    device_id: DeviceId
    rssi: float
    t: Timestamp

    def as_record(self) -> dict:
        return {
            "object_id": self.object_id,
            "device_id": self.device_id,
            "rssi": self.rssi,
            "t": self.t,
        }


@dataclass(frozen=True)
class PositioningRecord:
    """A deterministic positioning estimate ``(o_id, loc, t)``.

    Produced by trilateration and deterministic fingerprinting.
    """

    object_id: ObjectId
    location: IndoorLocation
    t: Timestamp
    method: PositioningMethod = PositioningMethod.TRILATERATION

    def as_record(self) -> dict:
        row = {
            "object_id": self.object_id,
            "t": self.t,
            "method": self.method.value,
        }
        row.update(self.location.as_record())
        return row


@dataclass(frozen=True)
class ProbabilisticPositioningRecord:
    """A probabilistic estimate ``(o_id, {(loc_i, prob_i)}, t)``.

    Produced by probabilistic fingerprinting algorithms (e.g. Naive Bayes):
    each candidate location carries a probability; the probabilities sum to 1.
    """

    object_id: ObjectId
    candidates: Tuple[Tuple[IndoorLocation, float], ...]
    t: Timestamp

    def __post_init__(self) -> None:
        if not self.candidates:
            raise ValueError("a probabilistic record needs at least one candidate")

    @property
    def best(self) -> IndoorLocation:
        """The most probable candidate location."""
        return max(self.candidates, key=lambda pair: pair[1])[0]

    @property
    def best_probability(self) -> float:
        """Probability mass of the most probable candidate."""
        return max(prob for _, prob in self.candidates)

    def as_record(self) -> dict:
        return {
            "object_id": self.object_id,
            "t": self.t,
            "method": PositioningMethod.FINGERPRINTING.value,
            "candidates": [
                {"location": loc.as_record(), "prob": prob}
                for loc, prob in self.candidates
            ],
        }


@dataclass(frozen=True)
class ProximityRecord:
    """A proximity detection period ``(o_id, d_id, ts, te)``.

    Object ``object_id`` was detected by device ``device_id`` continuously from
    ``t_start`` to ``t_end``.
    """

    object_id: ObjectId
    device_id: DeviceId
    t_start: Timestamp
    t_end: Timestamp

    def __post_init__(self) -> None:
        if self.t_end < self.t_start:
            raise ValueError("proximity record must have t_end >= t_start")

    @property
    def duration(self) -> float:
        """Length of the detection period in seconds."""
        return self.t_end - self.t_start

    def as_record(self) -> dict:
        return {
            "object_id": self.object_id,
            "device_id": self.device_id,
            "t_start": self.t_start,
            "t_end": self.t_end,
        }


@dataclass(frozen=True)
class DeviceRecord:
    """Positioning-device metadata produced by the Infrastructure Layer."""

    device_id: DeviceId
    device_type: DeviceType
    location: IndoorLocation
    detection_range: float
    detection_interval: float

    def as_record(self) -> dict:
        row = {
            "device_id": self.device_id,
            "device_type": self.device_type.value,
            "detection_range": self.detection_range,
            "detection_interval": self.detection_interval,
        }
        row.update(self.location.as_record())
        return row


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean of *values* (0.0 for an empty sequence)."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


__all__ = [
    "ObjectId",
    "DeviceId",
    "PartitionId",
    "BuildingId",
    "FloorId",
    "Timestamp",
    "DeviceType",
    "PositioningMethod",
    "METHOD_COMPATIBILITY",
    "method_applies_to",
    "IndoorLocation",
    "TrajectoryRecord",
    "RSSIRecord",
    "PositioningRecord",
    "ProbabilisticPositioningRecord",
    "ProximityRecord",
    "DeviceRecord",
    "mean",
]
