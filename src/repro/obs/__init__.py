"""Unified observability layer: metrics, tracing, and run telemetry.

Three stdlib-only building blocks (see ``docs/observability.md``):

* :class:`MetricsRegistry` — counters, gauges, and fixed-bucket histograms
  with deterministic snapshot/merge across generation shards;
* :class:`Tracer` — hierarchical timed spans in a bounded ring buffer, with
  cross-process adoption for worker shards;
* :class:`Telemetry` — the per-run bundle of both, built from the
  ``telemetry:`` configuration section and threaded through the pipeline,
  storage, live engine and CLI.
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_INSTRUMENT,
    merge_snapshots,
)
from repro.obs.telemetry import Telemetry
from repro.obs.trace import DEFAULT_CAPACITY, NULL_SPAN, Span, Tracer

__all__ = [
    "DEFAULT_BUCKETS",
    "DEFAULT_CAPACITY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_INSTRUMENT",
    "NULL_SPAN",
    "Span",
    "Telemetry",
    "Tracer",
    "merge_snapshots",
]
