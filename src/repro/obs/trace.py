"""Span-based tracing with a bounded ring-buffer exporter.

A :class:`Tracer` records hierarchical timed spans::

    with tracer.span("pipeline.run_streaming", workers=2) as root:
        with tracer.span("infrastructure"):
            ...

Finished spans land in a ring buffer (a ``deque`` with ``maxlen``), so a
long run keeps the most recent ``capacity`` spans and counts the rest as
``dropped`` — tracing never grows without bound.  :meth:`Tracer.export`
yields plain dicts ready for :func:`json.dump`.

Cross-process propagation follows the shard protocol: each worker builds its
own tracer (seeded with an ``s<shard_id>:`` id prefix so span ids never
collide across processes), exports its spans into the ``ShardOutput``, and
the parent re-roots them under its own span tree with :meth:`Tracer.adopt`
— in shard order, like every other shard-boundary merge.

Span ids are sequence numbers, not random — tracing must not perturb any
random stream and must serialize identically across runs of equal work.
Timestamps are ``perf_counter`` offsets from the tracer's origin (durations
are exact; absolute wall-clock times are deliberately absent).
"""

from __future__ import annotations

import json
import time
from collections import deque
from typing import Any, Deque, Dict, Iterable, List, Optional

#: Default ring-buffer capacity (finished spans retained).
DEFAULT_CAPACITY = 4096


class Span:
    """One timed operation; mutable while open, exported as a dict."""

    __slots__ = ("name", "span_id", "parent_id", "t_start", "duration", "attrs")

    def __init__(self, name: str, span_id: str, parent_id: Optional[str],
                 t_start: float, attrs: Dict[str, Any]) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.t_start = t_start
        self.duration: Optional[float] = None
        self.attrs = attrs

    def set_attr(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "t_start": self.t_start,
            "duration": self.duration,
            "attrs": dict(self.attrs),
        }


class _NullSpan:
    """Shared inert span handed out by a disabled tracer."""

    __slots__ = ()
    name = "<null>"
    span_id = ""
    parent_id = None
    duration = None

    def set_attr(self, key: str, value: Any) -> None:
        pass


NULL_SPAN = _NullSpan()


class _NullSpanContext:
    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return NULL_SPAN

    def __exit__(self, *exc_info: Any) -> bool:
        return False


_NULL_CONTEXT = _NullSpanContext()


class _SpanContext:
    """Context manager that opens a span on enter and finishes it on exit."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        if exc_type is not None:
            self._span.attrs["error"] = exc_type.__name__
        self._tracer._finish(self._span)
        return False


class Tracer:
    """Hierarchical span recorder with a bounded export buffer."""

    def __init__(self, enabled: bool = True, capacity: int = DEFAULT_CAPACITY,
                 id_prefix: str = "") -> None:
        self.enabled = bool(enabled)
        self.capacity = int(capacity)
        if self.capacity < 1:
            raise ValueError("tracer capacity must be at least 1")
        self.id_prefix = id_prefix
        self.dropped = 0
        self._sequence = 0
        self._stack: List[Span] = []
        self._finished: Deque[Span] = deque(maxlen=self.capacity)
        self._origin = time.perf_counter()

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def span(self, name: str, **attrs: Any) -> Any:
        """Open a child of the current span; use as a context manager."""
        if not self.enabled:
            return _NULL_CONTEXT
        self._sequence += 1
        span = Span(
            name=name,
            span_id=f"{self.id_prefix}{self._sequence}",
            parent_id=self._stack[-1].span_id if self._stack else None,
            t_start=time.perf_counter() - self._origin,
            attrs=attrs,
        )
        self._stack.append(span)
        return _SpanContext(self, span)

    def _finish(self, span: Span) -> None:
        span.duration = time.perf_counter() - self._origin - span.t_start
        # Unwind to the finishing span (robust against exotic exit orders).
        while self._stack:
            popped = self._stack.pop()
            if popped is span:
                break
        if len(self._finished) == self._finished.maxlen:
            self.dropped += 1
        self._finished.append(span)

    @property
    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    # ------------------------------------------------------------------ #
    # Cross-process adoption
    # ------------------------------------------------------------------ #
    def adopt(self, spans: Iterable[Dict[str, Any]],
              parent: Optional[Any] = None) -> None:
        """Graft exported *spans* (e.g. from a worker's shard) into this tree.

        Top-level imported spans (``parent_id is None``) are re-parented
        under *parent* (or the current span), and every imported timestamp is
        re-based onto the parent's start so the merged timeline nests.  The
        imported ids already carry their shard prefix, so no renumbering is
        needed.
        """
        if not self.enabled:
            return
        anchor = parent if parent is not None else self.current
        anchor_id = getattr(anchor, "span_id", None)
        base = getattr(anchor, "t_start", 0.0) or 0.0
        for payload in spans:
            span = Span(
                name=payload["name"],
                span_id=payload["span_id"],
                parent_id=payload["parent_id"] if payload["parent_id"] is not None else anchor_id,
                t_start=base + payload["t_start"],
                attrs=dict(payload.get("attrs", {})),
            )
            span.duration = payload.get("duration")
            if len(self._finished) == self._finished.maxlen:
                self.dropped += 1
            self._finished.append(span)

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #
    def export(self) -> List[Dict[str, Any]]:
        """Finished spans, oldest first, as plain dicts."""
        return [span.to_dict() for span in self._finished]

    def to_json(self) -> Dict[str, Any]:
        return {
            "enabled": self.enabled,
            "capacity": self.capacity,
            "dropped": self.dropped,
            "spans": self.export(),
        }

    def dump(self, path: Any) -> None:
        """Write :meth:`to_json` to *path* as indented JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")


__all__ = ["DEFAULT_CAPACITY", "Span", "NULL_SPAN", "Tracer"]
