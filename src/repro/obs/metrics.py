"""Process-local metrics registry: counters, gauges, histograms.

Zero-dependency instrumentation primitives for the generator.  Three design
constraints shape this module:

1. **True no-op when disabled.**  A disabled registry hands out a single
   shared null instrument whose ``inc``/``set``/``observe`` methods do
   nothing and allocate nothing, so instrumented hot loops cost one attribute
   call when telemetry is off.  The determinism contract follows for free:
   disabled telemetry cannot change generated records or query results
   because it executes no code that touches them.

2. **Deterministic shard merging.**  Streaming generation runs shards in
   worker processes; each shard records into its own registry and ships a
   plain-dict :meth:`MetricsRegistry.snapshot` back in the ``ShardOutput``.
   The parent merges snapshots *in shard order* with
   :meth:`MetricsRegistry.merge` — the same delta-aggregation pattern the
   spatial cache uses (:func:`repro.spatial.cache.merge_stats`).  Counter
   values depend only on what was generated, never on scheduling, so
   ``workers=N`` merges to exactly the serial values.

3. **Fixed-bucket histograms.**  Histograms accumulate counts into a fixed
   ladder of upper bounds (seconds-scale by default), which makes merging a
   pointwise sum and lets :meth:`Histogram.quantile` give percentile
   *estimates* without retaining samples.

Everything here is plain stdlib; the registry is not thread-safe (the
generator is process-parallel, not thread-parallel).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, Iterable, Optional, Tuple

#: Default histogram bucket upper bounds (seconds-scale latencies).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


class Counter:
    """A monotonically increasing count (events, records, drops)."""

    __slots__ = ("name", "value")
    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time measurement (queue depth, records/sec)."""

    __slots__ = ("name", "value")
    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """A fixed-bucket distribution with percentile estimates.

    ``counts[i]`` counts observations ``<= bounds[i]``; the final slot counts
    the overflow (observations above the last bound).
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "min", "max")
    kind = "histogram"

    def __init__(self, name: str, bounds: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError(f"histogram {name!r}: bounds must be strictly increasing")
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def quantile(self, q: float) -> Optional[float]:
        """Estimate the *q*-quantile (``0 <= q <= 1``) from the buckets.

        Interpolates linearly inside the bucket holding the target rank;
        the estimate is clamped to the observed ``[min, max]`` envelope, so
        single-bucket distributions still report sane values.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile q must be in [0, 1]")
        if self.count == 0 or self.min is None or self.max is None:
            return None
        rank = q * self.count
        seen = 0.0
        lower = self.min
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            upper = self.bounds[index] if index < len(self.bounds) else self.max
            if seen + bucket_count >= rank:
                fraction = (rank - seen) / bucket_count if bucket_count else 0.0
                estimate = lower + (min(upper, self.max) - lower) * fraction
                return min(max(estimate, self.min), self.max)
            seen += bucket_count
            lower = upper
        return self.max


class _NullInstrument:
    """The shared do-nothing instrument a disabled registry hands out."""

    __slots__ = ()
    kind = "null"
    name = "<null>"
    value = 0

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> None:
        return None


NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Get-or-create home of every instrument, with snapshot/merge support.

    Instruments are keyed by name; asking for an existing name with a
    different type raises ``ValueError``.  A registry constructed with
    ``enabled=False`` returns :data:`NULL_INSTRUMENT` from every factory and
    snapshots to an empty dict.
    """

    def __init__(self, enabled: bool = True,
                 buckets: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.enabled = bool(enabled)
        self.buckets = tuple(buckets)
        self._instruments: Dict[str, Any] = {}

    # ------------------------------------------------------------------ #
    # Instrument factories
    # ------------------------------------------------------------------ #
    def _get(self, name: str, cls: type, **kwargs: Any) -> Any:
        if not self.enabled:
            return NULL_INSTRUMENT
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = cls(name, **kwargs)
            self._instruments[name] = instrument
        elif not isinstance(instrument, cls):
            raise ValueError(
                f"metric {name!r} is a {instrument.kind}, not a {cls.kind}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str, bounds: Optional[Tuple[float, ...]] = None) -> Histogram:
        return self._get(name, Histogram, bounds=bounds or self.buckets)

    # ------------------------------------------------------------------ #
    # Snapshot / merge (the shard-boundary delta protocol)
    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, Any]:
        """A plain, picklable, deterministic dict of every instrument.

        Keys are sorted so equal registries serialize byte-identically.
        """
        if not self.enabled:
            return {}
        out: Dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if instrument.kind == "counter":
                out["counters"][name] = instrument.value
            elif instrument.kind == "gauge":
                out["gauges"][name] = instrument.value
            else:
                out["histograms"][name] = {
                    "bounds": list(instrument.bounds),
                    "counts": list(instrument.counts),
                    "count": instrument.count,
                    "sum": instrument.total,
                    "min": instrument.min,
                    "max": instrument.max,
                }
        return out

    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Fold a :meth:`snapshot` (e.g. one shard's delta) into this registry.

        Counters and histogram buckets add; gauges take the incoming value
        (last merge wins — merges happen in shard order, so the result is
        deterministic).  A no-op on a disabled registry or empty snapshot.
        """
        if not self.enabled or not snapshot:
            return
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, payload in snapshot.get("histograms", {}).items():
            histogram = self.histogram(name, bounds=tuple(payload["bounds"]))
            if list(histogram.bounds) != [float(b) for b in payload["bounds"]]:
                raise ValueError(f"histogram {name!r}: mismatched bucket bounds in merge")
            for index, bucket_count in enumerate(payload["counts"]):
                histogram.counts[index] += bucket_count
            histogram.count += payload["count"]
            histogram.total += payload["sum"]
            for extreme, pick in (("min", min), ("max", max)):
                incoming = payload[extreme]
                if incoming is not None:
                    current = getattr(histogram, extreme)
                    setattr(histogram, extreme,
                            incoming if current is None else pick(current, incoming))

    def to_json(self) -> Dict[str, Any]:
        """The snapshot plus derived percentile estimates per histogram."""
        snapshot = self.snapshot()
        if not snapshot:
            return {"enabled": False}
        for name, payload in snapshot["histograms"].items():
            histogram = self._instruments[name]
            payload["mean"] = histogram.mean
            payload["p50"] = histogram.quantile(0.5)
            payload["p90"] = histogram.quantile(0.9)
            payload["p99"] = histogram.quantile(0.99)
        snapshot["enabled"] = True
        return snapshot


def merge_snapshots(snapshots: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Merge snapshot dicts (in iteration order) into one snapshot."""
    registry = MetricsRegistry(enabled=True)
    for snapshot in snapshots:
        registry.merge(snapshot)
    return registry.snapshot()


__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "NULL_INSTRUMENT",
    "MetricsRegistry",
    "merge_snapshots",
]
