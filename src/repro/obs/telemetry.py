"""The per-run telemetry bundle: one metrics registry plus one tracer.

:class:`Telemetry` is what the pipeline, CLI, live engine and storage layer
actually pass around.  It is duck-typed against
:class:`repro.core.config.TelemetryConfig` (anything exposing ``enabled`` /
``trace`` / ``trace_capacity`` works), so this package stays importable with
zero dependencies on the rest of the codebase.

``Telemetry.disabled()`` is the canonical off state: both members are no-op
and :meth:`snapshot` reports ``{"enabled": False}``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import DEFAULT_CAPACITY, Tracer


class Telemetry:
    """One run's instrumentation: ``metrics`` registry + ``tracer``."""

    def __init__(self, metrics: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None, enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self.metrics = metrics if metrics is not None else MetricsRegistry(enabled=enabled)
        self.tracer = tracer if tracer is not None else Tracer(enabled=enabled)

    @classmethod
    def disabled(cls) -> "Telemetry":
        return cls(enabled=False)

    @classmethod
    def from_config(cls, config: Any, *, id_prefix: str = "") -> "Telemetry":
        """Build from a ``TelemetryConfig``-shaped object (or ``None``)."""
        if config is None or not getattr(config, "enabled", False):
            return cls.disabled()
        trace_enabled = bool(getattr(config, "trace", True))
        capacity = int(getattr(config, "trace_capacity", DEFAULT_CAPACITY) or DEFAULT_CAPACITY)
        return cls(
            metrics=MetricsRegistry(enabled=True),
            tracer=Tracer(enabled=trace_enabled, capacity=capacity, id_prefix=id_prefix),
            enabled=True,
        )

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, Any]:
        """A compact summary for run reports (``summary["telemetry"]``)."""
        if not self.enabled:
            return {"enabled": False}
        return {
            "enabled": True,
            "metrics": self.metrics.to_json(),
            "trace": {
                "enabled": self.tracer.enabled,
                "spans": len(self.tracer.export()),
                "dropped": self.tracer.dropped,
            },
        }

    def write_metrics_json(self, path: Any) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.metrics.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def write_trace_json(self, path: Any) -> None:
        self.tracer.dump(path)


__all__ = ["Telemetry"]
