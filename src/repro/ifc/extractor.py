"""DBI Processor: turn a parsed IFC model into the host indoor environment.

This implements the processing steps of Section 4.1:

1. build partitions from ``IFCSPACE`` footprints (irregular ones can later be
   decomposed by the Indoor Environment Controller);
2. identify data errors through geometry calculations (doors far from any
   partition, degenerate space footprints, overlapping spaces) and report
   them;
3. recover each door's connected partitions "through topology and geometry
   computations" — IFC does not store them;
4. recover staircase connectivity: find the upper/lower vertices of the stair
   point cloud, pick the floor with maximum intersection as upper/lower
   connected floor, then the partition containing those vertices as the
   upper/lower connected partition;
5. optionally run semantic extraction and partition decomposition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.building.editor import IndoorEnvironmentController
from repro.building.model import (
    Building,
    Door,
    Floor,
    OUTDOOR,
    Partition,
    PartitionKind,
    Staircase,
)
from repro.building.semantics import SemanticExtractor
from repro.core.errors import GeometryError, IFCExtractionError
from repro.geometry.decompose import DecompositionConfig
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.ifc.entities import IfcDoor, IfcModel, IfcSpace, IfcStairFlight
from repro.ifc.parser import parse_ifc_file, parse_ifc_text

#: Maximum distance between a door position and a partition boundary for the
#: door to be considered attached to that partition.
DOOR_ATTACH_TOLERANCE = 0.6

_KIND_BY_USAGE = {
    "room": PartitionKind.ROOM,
    "office": PartitionKind.OFFICE,
    "hallway": PartitionKind.HALLWAY,
    "corridor": PartitionKind.HALLWAY,
    "stairwell": PartitionKind.STAIRWELL,
    "elevator": PartitionKind.ELEVATOR,
    "public_area": PartitionKind.PUBLIC_AREA,
    "canteen": PartitionKind.CANTEEN,
    "shop": PartitionKind.SHOP,
    "clinic_room": PartitionKind.CLINIC_ROOM,
    "lobby": PartitionKind.LOBBY,
}


@dataclass
class ExtractionReport:
    """Everything the DBI processor wants to tell the user about one file."""

    entity_counts: Dict[str, int] = field(default_factory=dict)
    errors: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)
    door_connectivity: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    staircase_connectivity: Dict[str, Dict[str, str]] = field(default_factory=dict)
    decomposition_summary: Optional[Dict[str, int]] = None

    @property
    def has_errors(self) -> bool:
        return bool(self.errors)


@dataclass
class DBIProcessorOptions:
    """Knobs of the DBI processing pipeline."""

    decompose_partitions: bool = False
    decomposition: DecompositionConfig = field(default_factory=DecompositionConfig)
    extract_semantics: bool = True
    wall_attenuation_db: float = 3.0
    strict: bool = False


class DBIProcessor:
    """Constructs the host indoor environment from DBI (IFC) input."""

    def __init__(self, options: Optional[DBIProcessorOptions] = None) -> None:
        self.options = options or DBIProcessorOptions()

    # ------------------------------------------------------------------ #
    # Entry points
    # ------------------------------------------------------------------ #
    def process_text(self, text: str, building_id: Optional[str] = None) -> Tuple[Building, ExtractionReport]:
        """Process IFC SPF *text*; return the building and an extraction report."""
        model = parse_ifc_text(text)
        return self.process_model(model, building_id)

    def process_file(self, path: str, building_id: Optional[str] = None) -> Tuple[Building, ExtractionReport]:
        """Process the IFC SPF file at *path*."""
        model = parse_ifc_file(path)
        return self.process_model(model, building_id)

    def process_model(self, model: IfcModel, building_id: Optional[str] = None) -> Tuple[Building, ExtractionReport]:
        """Process an already-parsed :class:`IfcModel`."""
        report = ExtractionReport(entity_counts=model.entity_counts)
        if not model.storeys:
            raise IFCExtractionError("the IFC model contains no IFCBUILDINGSTOREY")
        name = model.building.name if model.building else "building"
        building = Building(building_id or name, name=name)

        storey_to_floor = self._build_floors(model, building)
        self._build_partitions(model, building, storey_to_floor, report)
        self._build_doors(model, building, storey_to_floor, report)
        self._build_staircases(model, building, report)

        for problem in building.validate():
            report.warnings.append(problem)

        if self.options.decompose_partitions:
            controller = IndoorEnvironmentController(building)
            decomposition = controller.decompose_irregular_partitions(self.options.decomposition)
            report.decomposition_summary = {
                "partitions_split": decomposition.partitions_split,
                "partitions_created": len(decomposition.created_partitions),
                "virtual_doors_created": len(decomposition.created_virtual_doors),
            }
        if self.options.extract_semantics:
            SemanticExtractor().annotate_building(building)
        if self.options.strict and report.has_errors:
            raise IFCExtractionError(
                "DBI processing found errors: " + "; ".join(report.errors)
            )
        return building, report

    # ------------------------------------------------------------------ #
    # Floors and partitions
    # ------------------------------------------------------------------ #
    def _build_floors(self, model: IfcModel, building: Building) -> Dict[int, int]:
        """Create one floor per storey (bottom-up); return storey-entity → floor-id."""
        storey_to_floor: Dict[int, int] = {}
        storeys = model.storeys_by_elevation()
        for floor_id, storey in enumerate(storeys):
            height = 3.0
            if floor_id + 1 < len(storeys):
                height = max(storeys[floor_id + 1].elevation - storey.elevation, 2.5)
            building.add_floor(Floor(floor_id, elevation=storey.elevation, height=height))
            storey_to_floor[storey.entity_id] = floor_id
        return storey_to_floor

    def _build_partitions(
        self,
        model: IfcModel,
        building: Building,
        storey_to_floor: Dict[int, int],
        report: ExtractionReport,
    ) -> None:
        for space in model.spaces:
            floor_id = storey_to_floor.get(space.storey_ref)
            if floor_id is None:
                report.errors.append(
                    f"space {space.name}: references unknown storey #{space.storey_ref}"
                )
                continue
            try:
                polygon = Polygon([Point(x, y) for x, y in space.boundary.xy()])
            except GeometryError as error:
                report.errors.append(f"space {space.name}: invalid footprint ({error})")
                continue
            kind = _KIND_BY_USAGE.get(space.usage.lower(), PartitionKind.ROOM)
            partition = Partition(
                partition_id=space.name,
                floor_id=floor_id,
                polygon=polygon,
                kind=kind,
                name=space.long_name or space.name,
            )
            building.floors[floor_id].add_partition(partition)

    # ------------------------------------------------------------------ #
    # Doors
    # ------------------------------------------------------------------ #
    def _build_doors(
        self,
        model: IfcModel,
        building: Building,
        storey_to_floor: Dict[int, int],
        report: ExtractionReport,
    ) -> None:
        for ifc_door in model.doors:
            floor_id = storey_to_floor.get(ifc_door.storey_ref)
            if floor_id is None:
                report.errors.append(
                    f"door {ifc_door.name}: references unknown storey #{ifc_door.storey_ref}"
                )
                continue
            floor = building.floors[floor_id]
            position = Point(ifc_door.position.x, ifc_door.position.y)
            attached = self._attached_partitions(floor.partitions.values(), position)
            if not attached:
                report.errors.append(
                    f"door {ifc_door.name}: not adjacent to any partition on floor {floor_id}"
                )
                continue
            if len(attached) == 1:
                partitions = (attached[0], OUTDOOR)
            else:
                partitions = (attached[0], attached[1])
            try:
                floor.add_door(
                    Door(
                        door_id=ifc_door.name,
                        floor_id=floor_id,
                        position=position,
                        partitions=partitions,
                        width=ifc_door.width,
                    )
                )
            except Exception as error:  # duplicate ids etc.
                report.errors.append(f"door {ifc_door.name}: {error}")
                continue
            report.door_connectivity[ifc_door.name] = partitions

    @staticmethod
    def _attached_partitions(partitions, position: Point) -> List[str]:
        """Partition ids whose boundary is within tolerance of *position*, nearest first."""
        scored = []
        for partition in partitions:
            distance = min(
                edge.distance_to_point(position) for edge in partition.polygon.edges()
            )
            if distance <= DOOR_ATTACH_TOLERANCE:
                scored.append((distance, partition.partition_id))
        scored.sort()
        return [partition_id for _, partition_id in scored[:2]]

    # ------------------------------------------------------------------ #
    # Staircases
    # ------------------------------------------------------------------ #
    def _build_staircases(
        self, model: IfcModel, building: Building, report: ExtractionReport
    ) -> None:
        floors_by_elevation = [
            (building.floors[floor_id].elevation, floor_id)
            for floor_id in building.floor_ids
        ]
        for stair in model.stairs:
            resolved = self._resolve_staircase(stair, building, floors_by_elevation, report)
            if resolved is None:
                continue
            try:
                building.add_staircase(resolved)
            except Exception as error:
                report.errors.append(f"staircase {stair.name}: {error}")
                continue
            report.staircase_connectivity[stair.name] = {
                "lower_floor": str(resolved.lower_floor),
                "lower_partition": resolved.lower_partition,
                "upper_floor": str(resolved.upper_floor),
                "upper_partition": resolved.upper_partition,
            }

    def _resolve_staircase(
        self,
        stair: IfcStairFlight,
        building: Building,
        floors_by_elevation: List[Tuple[float, int]],
        report: ExtractionReport,
    ) -> Optional[Staircase]:
        z_values = stair.z_values()
        if len(z_values) < 2:
            report.errors.append(
                f"staircase {stair.name}: needs points at two distinct elevations"
            )
            return None
        lower_z, upper_z = z_values[0], z_values[-1]
        # Step 1 of Section 4.1: pick the floor with maximum intersection with
        # the upper (lower) vertices — here, the floor whose elevation is
        # nearest to the vertex elevation.
        lower_floor = self._closest_floor(lower_z, floors_by_elevation)
        upper_floor = self._closest_floor(upper_z, floors_by_elevation)
        if lower_floor == upper_floor:
            report.errors.append(
                f"staircase {stair.name}: lower and upper vertices resolve to the same floor"
            )
            return None
        if lower_floor > upper_floor:
            lower_floor, upper_floor = upper_floor, lower_floor
            lower_z, upper_z = upper_z, lower_z
        # Step 2: within the connected floor, the partition containing the
        # vertices is the connected partition.
        lower_point = _centroid_xy(stair.points_at_z(lower_z))
        upper_point = _centroid_xy(stair.points_at_z(upper_z))
        lower_partition = building.floors[lower_floor].partition_at(lower_point)
        upper_partition = building.floors[upper_floor].partition_at(upper_point)
        if lower_partition is None or upper_partition is None:
            report.errors.append(
                f"staircase {stair.name}: endpoints are not inside any partition"
            )
            return None
        vertical = abs(
            building.floors[upper_floor].elevation - building.floors[lower_floor].elevation
        )
        horizontal = lower_point.distance_to(upper_point)
        length = max((vertical ** 2 + horizontal ** 2) ** 0.5 * 1.2, 3.0)
        return Staircase(
            staircase_id=stair.name,
            lower_floor=lower_floor,
            upper_floor=upper_floor,
            lower_partition=lower_partition.partition_id,
            lower_point=lower_point,
            upper_partition=upper_partition.partition_id,
            upper_point=upper_point,
            length=length,
        )

    @staticmethod
    def _closest_floor(z: float, floors_by_elevation: List[Tuple[float, int]]) -> int:
        return min(floors_by_elevation, key=lambda pair: abs(pair[0] - z))[1]


def _centroid_xy(points) -> Point:
    xs = [p.x for p in points]
    ys = [p.y for p in points]
    if not xs:
        return Point(0.0, 0.0)
    return Point(sum(xs) / len(xs), sum(ys) / len(ys))


def load_building(path: str, options: Optional[DBIProcessorOptions] = None) -> Building:
    """Convenience: process the IFC file at *path* and return only the building."""
    building, _ = DBIProcessor(options).process_file(path)
    return building


__all__ = [
    "DOOR_ATTACH_TOLERANCE",
    "ExtractionReport",
    "DBIProcessorOptions",
    "DBIProcessor",
    "load_building",
]
