"""Tokenizer / low-level parser for STEP physical files (ISO 10303-21).

Industry-standard DBI files (IFC) are STEP "SPF" text files: a ``HEADER``
section followed by a ``DATA`` section whose lines have the shape::

    #42=IFCSPACE('2fD$kq...', $, 'Office S0', 'office room', ...);

This module turns the textual instance lines into structured
:class:`StepInstance` values whose arguments are plain Python objects:

* ``'text'``            → ``str``
* ``42`` / ``42.5``     → ``int`` / ``float``
* ``#17``               → :class:`EntityRef`
* ``.ELEMENT.``         → :class:`EnumValue`
* ``$`` (unset) / ``*`` → ``None`` / :data:`WILDCARD`
* ``(a, b, c)``         → ``list``

The grammar supported here is the subset required to round-trip the files
produced by :mod:`repro.ifc.writer` and to survive typical vendor quirks
(whitespace, blank lines, comments, multi-line instances).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.core.errors import IFCParseError


@dataclass(frozen=True)
class EntityRef:
    """A reference to another instance, written ``#<id>`` in the file."""

    entity_id: int

    def __repr__(self) -> str:
        return f"#{self.entity_id}"


@dataclass(frozen=True)
class EnumValue:
    """A STEP enumeration literal, written ``.NAME.`` in the file."""

    name: str

    def __repr__(self) -> str:
        return f".{self.name}."


class _Wildcard:
    """Singleton for the ``*`` (derived attribute) token."""

    _instance: Optional["_Wildcard"] = None

    def __new__(cls) -> "_Wildcard":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "*"


WILDCARD = _Wildcard()


@dataclass
class StepInstance:
    """One parsed ``#id=TYPE(...)`` instance line."""

    entity_id: int
    type_name: str
    arguments: List[Any] = field(default_factory=list)
    line: int = 0

    def arg(self, index: int, default: Any = None) -> Any:
        """The *index*-th argument, or *default* when absent/unset."""
        if index >= len(self.arguments):
            return default
        value = self.arguments[index]
        return default if value is None else value


@dataclass
class StepFile:
    """A parsed STEP file: header fields plus the instances of the DATA section."""

    header: Dict[str, List[Any]] = field(default_factory=dict)
    instances: Dict[int, StepInstance] = field(default_factory=dict)

    def by_type(self, type_name: str) -> List[StepInstance]:
        """All instances of *type_name* (case-insensitive), in id order."""
        wanted = type_name.upper()
        found = [i for i in self.instances.values() if i.type_name == wanted]
        return sorted(found, key=lambda instance: instance.entity_id)

    def resolve(self, ref: Any) -> Optional[StepInstance]:
        """Dereference an :class:`EntityRef` (returns ``None`` for anything else)."""
        if isinstance(ref, EntityRef):
            return self.instances.get(ref.entity_id)
        return None

    def __len__(self) -> int:
        return len(self.instances)


# --------------------------------------------------------------------------- #
# Argument scanner
# --------------------------------------------------------------------------- #
class _ArgumentScanner:
    """Recursive-descent scanner for a STEP argument list."""

    def __init__(self, text: str, line: int) -> None:
        self.text = text
        self.position = 0
        self.line = line

    def parse_arguments(self) -> List[Any]:
        """Parse the full ``(...)`` argument list."""
        self._skip_whitespace()
        self._expect("(")
        arguments = self._parse_list_body()
        self._skip_whitespace()
        if self.position != len(self.text):
            raise IFCParseError(
                f"unexpected trailing characters {self.text[self.position:]!r}", self.line
            )
        return arguments

    def _parse_list_body(self) -> List[Any]:
        values: List[Any] = []
        self._skip_whitespace()
        if self._peek() == ")":
            self.position += 1
            return values
        while True:
            values.append(self._parse_value())
            self._skip_whitespace()
            character = self._peek()
            if character == ",":
                self.position += 1
                continue
            if character == ")":
                self.position += 1
                return values
            raise IFCParseError(
                f"expected ',' or ')' at offset {self.position}", self.line
            )

    def _parse_value(self) -> Any:
        self._skip_whitespace()
        character = self._peek()
        if character == "'":
            return self._parse_string()
        if character == "#":
            return self._parse_reference()
        if character == ".":
            return self._parse_enum()
        if character == "(":
            self.position += 1
            return self._parse_list_body()
        if character == "$":
            self.position += 1
            return None
        if character == "*":
            self.position += 1
            return WILDCARD
        return self._parse_number_or_keyword()

    def _parse_string(self) -> str:
        # STEP escapes a quote by doubling it: 'it''s'.
        assert self._peek() == "'"
        self.position += 1
        pieces: List[str] = []
        while True:
            if self.position >= len(self.text):
                raise IFCParseError("unterminated string literal", self.line)
            character = self.text[self.position]
            if character == "'":
                if self.position + 1 < len(self.text) and self.text[self.position + 1] == "'":
                    pieces.append("'")
                    self.position += 2
                    continue
                self.position += 1
                return "".join(pieces)
            pieces.append(character)
            self.position += 1

    def _parse_reference(self) -> EntityRef:
        match = re.match(r"#(\d+)", self.text[self.position:])
        if not match:
            raise IFCParseError(
                f"malformed entity reference at offset {self.position}", self.line
            )
        self.position += match.end()
        return EntityRef(int(match.group(1)))

    def _parse_enum(self) -> EnumValue:
        match = re.match(r"\.([A-Za-z0-9_]+)\.", self.text[self.position:])
        if not match:
            raise IFCParseError(
                f"malformed enumeration at offset {self.position}", self.line
            )
        self.position += match.end()
        return EnumValue(match.group(1).upper())

    def _parse_number_or_keyword(self) -> Any:
        match = re.match(
            r"[-+]?\d+\.\d*(?:[eE][-+]?\d+)?|[-+]?\.\d+(?:[eE][-+]?\d+)?"
            r"|[-+]?\d+(?:[eE][-+]?\d+)?|[A-Za-z_][A-Za-z0-9_]*",
            self.text[self.position:],
        )
        if not match:
            raise IFCParseError(
                f"unexpected character {self._peek()!r} at offset {self.position}",
                self.line,
            )
        token = match.group(0)
        self.position += match.end()
        if re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", token):
            # Typed aggregates such as IFCBOOLEAN(.T.) degrade to the keyword.
            return token
        if any(symbol in token for symbol in ".eE") and not token.lstrip("+-").isdigit():
            return float(token)
        return int(token)

    def _peek(self) -> str:
        if self.position >= len(self.text):
            raise IFCParseError("unexpected end of arguments", self.line)
        return self.text[self.position]

    def _expect(self, character: str) -> None:
        if self._peek() != character:
            raise IFCParseError(
                f"expected {character!r} at offset {self.position}", self.line
            )
        self.position += 1

    def _skip_whitespace(self) -> None:
        while self.position < len(self.text) and self.text[self.position] in " \t\r\n":
            self.position += 1


# --------------------------------------------------------------------------- #
# File-level tokenizer
# --------------------------------------------------------------------------- #
_INSTANCE_RE = re.compile(r"^#(\d+)\s*=\s*([A-Za-z0-9_]+)\s*(\(.*\))\s*$", re.DOTALL)
_HEADER_RE = re.compile(r"^([A-Za-z0-9_]+)\s*(\(.*\))\s*$", re.DOTALL)


def _iter_statements(text: str) -> Iterator[Tuple[str, int]]:
    """Yield ``(statement, line_number)`` for each ';'-terminated statement.

    Comments (``/* ... */``) are stripped; statements may span multiple lines;
    semicolons inside string literals (e.g. ``'2;1'``) do not terminate a
    statement.
    """
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.DOTALL)
    buffer: List[str] = []
    start_line = 1
    line = 1
    in_string = False
    for character in text:
        if character == "\n":
            line += 1
        if character == "'":
            # STEP escapes a quote by doubling it; toggling on every quote
            # still tracks "inside a string" correctly for '' pairs.
            in_string = not in_string
        if character == ";" and not in_string:
            statement = "".join(buffer).strip()
            if statement:
                yield statement, start_line
            buffer = []
            start_line = line
            continue
        if not buffer and character in " \t\r\n":
            start_line = line
            continue
        buffer.append(character)
    remainder = "".join(buffer).strip()
    if remainder:
        yield remainder, start_line


def tokenize(text: str) -> StepFile:
    """Parse the STEP text into a :class:`StepFile`.

    Raises:
        IFCParseError: on malformed section structure or instance syntax.
    """
    step = StepFile()
    section: Optional[str] = None
    saw_iso = False
    for statement, line in _iter_statements(text):
        upper = statement.upper()
        if upper.startswith("ISO-10303-21"):
            saw_iso = True
            continue
        if upper.startswith("END-ISO-10303-21"):
            continue
        if upper == "HEADER":
            section = "HEADER"
            continue
        if upper == "DATA":
            section = "DATA"
            continue
        if upper == "ENDSEC":
            section = None
            continue
        if section == "HEADER":
            match = _HEADER_RE.match(statement)
            if not match:
                raise IFCParseError(f"malformed header statement {statement!r}", line)
            name, arguments_text = match.group(1).upper(), match.group(2)
            step.header[name] = _ArgumentScanner(arguments_text, line).parse_arguments()
            continue
        if section == "DATA":
            match = _INSTANCE_RE.match(statement)
            if not match:
                raise IFCParseError(f"malformed instance statement {statement!r}", line)
            entity_id = int(match.group(1))
            type_name = match.group(2).upper()
            arguments = _ArgumentScanner(match.group(3), line).parse_arguments()
            if entity_id in step.instances:
                raise IFCParseError(f"duplicate instance id #{entity_id}", line)
            step.instances[entity_id] = StepInstance(
                entity_id=entity_id,
                type_name=type_name,
                arguments=arguments,
                line=line,
            )
            continue
        # Statements outside any section are tolerated only before ISO marker.
        if not saw_iso and not statement:
            continue
        raise IFCParseError(f"statement outside HEADER/DATA section: {statement!r}", line)
    if not saw_iso:
        raise IFCParseError("missing ISO-10303-21 marker; not a STEP file")
    return step


def tokenize_file(path: str) -> StepFile:
    """Read and tokenize the STEP file at *path*."""
    with open(path, "r", encoding="utf-8") as handle:
        return tokenize(handle.read())


__all__ = [
    "EntityRef",
    "EnumValue",
    "WILDCARD",
    "StepInstance",
    "StepFile",
    "tokenize",
    "tokenize_file",
]
