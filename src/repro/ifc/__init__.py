"""Digital building information (DBI) processing: IFC parse, extract, write."""

from repro.ifc.tokenizer import EntityRef, EnumValue, StepFile, StepInstance, tokenize, tokenize_file
from repro.ifc.entities import (
    IfcBuilding,
    IfcBuildingStorey,
    IfcCartesianPoint,
    IfcDoor,
    IfcModel,
    IfcPolyline,
    IfcSpace,
    IfcStairFlight,
)
from repro.ifc.parser import IFCParser, parse_ifc_file, parse_ifc_text
from repro.ifc.extractor import (
    DBIProcessor,
    DBIProcessorOptions,
    ExtractionReport,
    load_building,
)
from repro.ifc.writer import ErrorInjection, building_to_ifc, write_ifc

__all__ = [
    "EntityRef",
    "EnumValue",
    "StepFile",
    "StepInstance",
    "tokenize",
    "tokenize_file",
    "IfcBuilding",
    "IfcBuildingStorey",
    "IfcCartesianPoint",
    "IfcDoor",
    "IfcModel",
    "IfcPolyline",
    "IfcSpace",
    "IfcStairFlight",
    "IFCParser",
    "parse_ifc_file",
    "parse_ifc_text",
    "DBIProcessor",
    "DBIProcessorOptions",
    "ExtractionReport",
    "load_building",
    "ErrorInjection",
    "building_to_ifc",
    "write_ifc",
]
