"""IFC parser: STEP instances → typed :class:`~repro.ifc.entities.IfcModel`.

The parser resolves cross-references (storey → building, space → polyline →
points, ...) and validates that referenced instances exist and have the
expected types, raising :class:`~repro.core.errors.IFCParseError` /
:class:`~repro.core.errors.IFCExtractionError` with the offending line number
otherwise.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.core.errors import IFCParseError
from repro.ifc.entities import (
    IfcBuilding,
    IfcBuildingStorey,
    IfcCartesianPoint,
    IfcDoor,
    IfcModel,
    IfcPolyline,
    IfcSpace,
    IfcStairFlight,
)
from repro.ifc.tokenizer import EntityRef, StepFile, StepInstance, tokenize, tokenize_file


class IFCParser:
    """Builds an :class:`IfcModel` from a tokenised :class:`StepFile`."""

    def __init__(self, step: StepFile) -> None:
        self.step = step

    # ------------------------------------------------------------------ #
    # Entry points
    # ------------------------------------------------------------------ #
    @classmethod
    def from_text(cls, text: str) -> "IFCParser":
        """Parse *text* (STEP-SPF) and wrap the result."""
        return cls(tokenize(text))

    @classmethod
    def from_file(cls, path: str) -> "IFCParser":
        """Parse the file at *path* and wrap the result."""
        return cls(tokenize_file(path))

    def parse(self) -> IfcModel:
        """Resolve every supported entity type into a typed model."""
        model = IfcModel()
        buildings = self.step.by_type("IFCBUILDING")
        if buildings:
            model.building = self._parse_building(buildings[0])
        for instance in self.step.by_type("IFCBUILDINGSTOREY"):
            model.storeys.append(self._parse_storey(instance))
        for instance in self.step.by_type("IFCSPACE"):
            model.spaces.append(self._parse_space(instance))
        for instance in self.step.by_type("IFCDOOR"):
            model.doors.append(self._parse_door(instance))
        for instance in self.step.by_type("IFCSTAIRFLIGHT") + self.step.by_type("IFCSTAIR"):
            model.stairs.append(self._parse_stair(instance))
        return model

    # ------------------------------------------------------------------ #
    # Per-entity parsing
    # ------------------------------------------------------------------ #
    def _parse_building(self, instance: StepInstance) -> IfcBuilding:
        return IfcBuilding(
            entity_id=instance.entity_id,
            global_id=self._string(instance, 0, "GlobalId"),
            name=self._string(instance, 1, "Name", default="building"),
            long_name=str(instance.arg(2, "") or ""),
        )

    def _parse_storey(self, instance: StepInstance) -> IfcBuildingStorey:
        elevation = instance.arg(2, 0.0)
        if not isinstance(elevation, (int, float)):
            raise IFCParseError(
                f"IFCBUILDINGSTOREY #{instance.entity_id}: elevation must be numeric",
                instance.line,
            )
        building_ref = instance.arg(3)
        return IfcBuildingStorey(
            entity_id=instance.entity_id,
            global_id=self._string(instance, 0, "GlobalId"),
            name=self._string(instance, 1, "Name", default=f"storey_{instance.entity_id}"),
            elevation=float(elevation),
            building_ref=building_ref.entity_id if isinstance(building_ref, EntityRef) else None,
        )

    def _parse_space(self, instance: StepInstance) -> IfcSpace:
        storey_ref = self._reference(instance, 3, "IFCBUILDINGSTOREY")
        boundary = self._polyline(instance, 4)
        usage = instance.arg(5, "room")
        return IfcSpace(
            entity_id=instance.entity_id,
            global_id=self._string(instance, 0, "GlobalId"),
            name=self._string(instance, 1, "Name", default=f"space_{instance.entity_id}"),
            long_name=str(instance.arg(2, "") or ""),
            storey_ref=storey_ref.entity_id,
            boundary=boundary,
            usage=str(usage) if usage else "room",
        )

    def _parse_door(self, instance: StepInstance) -> IfcDoor:
        storey_ref = self._reference(instance, 2, "IFCBUILDINGSTOREY")
        position = self._point(instance, 3)
        width = instance.arg(4, 1.0)
        if not isinstance(width, (int, float)) or width <= 0:
            raise IFCParseError(
                f"IFCDOOR #{instance.entity_id}: width must be a positive number",
                instance.line,
            )
        return IfcDoor(
            entity_id=instance.entity_id,
            global_id=self._string(instance, 0, "GlobalId"),
            name=self._string(instance, 1, "Name", default=f"door_{instance.entity_id}"),
            storey_ref=storey_ref.entity_id,
            position=position,
            width=float(width),
        )

    def _parse_stair(self, instance: StepInstance) -> IfcStairFlight:
        raw_points = instance.arg(2, [])
        if not isinstance(raw_points, list) or not raw_points:
            raise IFCParseError(
                f"stair #{instance.entity_id}: expected a list of 3D points",
                instance.line,
            )
        points = tuple(self._resolve_point(ref, instance) for ref in raw_points)
        return IfcStairFlight(
            entity_id=instance.entity_id,
            global_id=self._string(instance, 0, "GlobalId"),
            name=self._string(instance, 1, "Name", default=f"stair_{instance.entity_id}"),
            points=points,
        )

    # ------------------------------------------------------------------ #
    # Argument helpers
    # ------------------------------------------------------------------ #
    def _string(
        self, instance: StepInstance, index: int, attribute: str, default: Optional[str] = None
    ) -> str:
        value = instance.arg(index, default)
        if value is None:
            raise IFCParseError(
                f"{instance.type_name} #{instance.entity_id}: missing {attribute}",
                instance.line,
            )
        return str(value)

    def _reference(self, instance: StepInstance, index: int, expected_type: str) -> StepInstance:
        value = instance.arg(index)
        if not isinstance(value, EntityRef):
            raise IFCParseError(
                f"{instance.type_name} #{instance.entity_id}: argument {index} "
                f"must reference an {expected_type}",
                instance.line,
            )
        target = self.step.resolve(value)
        if target is None:
            raise IFCParseError(
                f"{instance.type_name} #{instance.entity_id}: dangling reference {value}",
                instance.line,
            )
        if target.type_name != expected_type:
            raise IFCParseError(
                f"{instance.type_name} #{instance.entity_id}: expected {expected_type}, "
                f"found {target.type_name}",
                instance.line,
            )
        return target

    def _polyline(self, instance: StepInstance, index: int) -> IfcPolyline:
        target = self._reference(instance, index, "IFCPOLYLINE")
        raw_points = target.arg(0, [])
        if not isinstance(raw_points, list) or len(raw_points) < 3:
            raise IFCParseError(
                f"IFCPOLYLINE #{target.entity_id}: needs at least three points",
                target.line,
            )
        points = tuple(self._resolve_point(ref, target) for ref in raw_points)
        return IfcPolyline(entity_id=target.entity_id, points=points)

    def _point(self, instance: StepInstance, index: int) -> IfcCartesianPoint:
        value = instance.arg(index)
        if not isinstance(value, EntityRef):
            raise IFCParseError(
                f"{instance.type_name} #{instance.entity_id}: argument {index} "
                "must reference an IFCCARTESIANPOINT",
                instance.line,
            )
        return self._resolve_point(value, instance)

    def _resolve_point(self, ref: Any, context: StepInstance) -> IfcCartesianPoint:
        if not isinstance(ref, EntityRef):
            raise IFCParseError(
                f"{context.type_name} #{context.entity_id}: expected a point reference, "
                f"found {ref!r}",
                context.line,
            )
        target = self.step.resolve(ref)
        if target is None or target.type_name != "IFCCARTESIANPOINT":
            raise IFCParseError(
                f"{context.type_name} #{context.entity_id}: {ref} is not an IFCCARTESIANPOINT",
                context.line,
            )
        coordinates = target.arg(0, [])
        if (
            not isinstance(coordinates, list)
            or len(coordinates) < 2
            or not all(isinstance(c, (int, float)) for c in coordinates)
        ):
            raise IFCParseError(
                f"IFCCARTESIANPOINT #{target.entity_id}: malformed coordinates",
                target.line,
            )
        return IfcCartesianPoint(
            entity_id=target.entity_id,
            coordinates=tuple(float(c) for c in coordinates),
        )


def parse_ifc_text(text: str) -> IfcModel:
    """Parse IFC SPF *text* into a typed model."""
    return IFCParser.from_text(text).parse()


def parse_ifc_file(path: str) -> IfcModel:
    """Parse the IFC SPF file at *path* into a typed model."""
    return IFCParser.from_file(path).parse()


__all__ = ["IFCParser", "parse_ifc_text", "parse_ifc_file"]
