"""IFC (STEP-SPF) writer: serialise a building model back to DBI text.

The writer intentionally drops the information that real IFC files also lack:
door–partition connectivity and staircase connectivity are *not* written, so
that the extractor has to recover them exactly as Section 4.1 describes.

The writer can also *inject errors* into the output (doors placed away from
any partition, spaces with degenerate footprints) to exercise the "identify
and fix parse errors" step of the demonstration path.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.building.model import Building, OUTDOOR
from repro.geometry.point import Point


@dataclass
class ErrorInjection:
    """Optional artificial data errors added to the written file."""

    orphan_doors: int = 0
    degenerate_spaces: int = 0


class _InstanceWriter:
    """Accumulates numbered STEP instances."""

    def __init__(self) -> None:
        self._counter = itertools.count(1)
        self.lines: List[str] = []

    def add(self, type_name: str, arguments: str) -> int:
        entity_id = next(self._counter)
        self.lines.append(f"#{entity_id}={type_name}({arguments});")
        return entity_id


def _escape(text: str) -> str:
    return text.replace("'", "''")


def _format_float(value: float) -> str:
    return f"{value:.6f}".rstrip("0").rstrip(".") or "0."


def building_to_ifc(
    building: Building,
    injection: Optional[ErrorInjection] = None,
) -> str:
    """Serialise *building* to IFC SPF text."""
    injection = injection or ErrorInjection()
    writer = _InstanceWriter()
    guid_counter = itertools.count(1)

    def guid() -> str:
        return f"GUID{next(guid_counter):06d}"

    building_ref = writer.add(
        "IFCBUILDING",
        f"'{guid()}','{_escape(building.building_id)}','{_escape(building.name)}'",
    )
    storey_refs: Dict[int, int] = {}
    for floor_id in building.floor_ids:
        floor = building.floors[floor_id]
        storey_refs[floor_id] = writer.add(
            "IFCBUILDINGSTOREY",
            f"'{guid()}','Floor {floor_id}',{_format_float(floor.elevation)},#{building_ref}",
        )

    def write_point_2d(point: Point) -> int:
        return writer.add(
            "IFCCARTESIANPOINT",
            f"({_format_float(point.x)},{_format_float(point.y)})",
        )

    def write_point_3d(point: Point, z: float) -> int:
        return writer.add(
            "IFCCARTESIANPOINT",
            f"({_format_float(point.x)},{_format_float(point.y)},{_format_float(z)})",
        )

    # Spaces ---------------------------------------------------------------
    degenerate_budget = injection.degenerate_spaces
    for floor_id in building.floor_ids:
        floor = building.floors[floor_id]
        for partition in floor.partitions.values():
            vertices = list(partition.polygon.vertices)
            if degenerate_budget > 0:
                # Collapse the footprint to a line: a degenerate space.
                vertices = [vertices[0], vertices[1], vertices[0]]
                degenerate_budget -= 1
            point_refs = [write_point_2d(vertex) for vertex in vertices]
            polyline_ref = writer.add(
                "IFCPOLYLINE",
                "(" + ",".join(f"#{ref}" for ref in point_refs) + ")",
            )
            writer.add(
                "IFCSPACE",
                f"'{guid()}','{_escape(partition.partition_id)}',"
                f"'{_escape(partition.name)}',#{storey_refs[floor_id]},"
                f"#{polyline_ref},'{partition.kind.value}'",
            )

    # Doors ------------------------------------------------------------------
    orphan_budget = injection.orphan_doors
    for floor_id in building.floor_ids:
        floor = building.floors[floor_id]
        bounding = floor.bounding_box
        for door in floor.doors.values():
            position = door.position
            if orphan_budget > 0:
                # Place the door far outside the floor extent.
                position = Point(bounding.max_x + 50.0, bounding.max_y + 50.0)
                orphan_budget -= 1
            point_ref = write_point_2d(position)
            writer.add(
                "IFCDOOR",
                f"'{guid()}','{_escape(door.door_id)}',#{storey_refs[floor_id]},"
                f"#{point_ref},{_format_float(door.width)}",
            )

    # Staircases: emitted only as disjoint 3D point sets -----------------------
    for staircase in building.staircases.values():
        lower_floor = building.floors[staircase.lower_floor]
        upper_floor = building.floors[staircase.upper_floor]
        lower_z = lower_floor.elevation
        upper_z = upper_floor.elevation
        corner_offsets = [Point(-0.5, -0.5), Point(0.5, -0.5), Point(0.5, 0.5), Point(-0.5, 0.5)]
        point_refs = [
            write_point_3d(staircase.lower_point + offset, lower_z)
            for offset in corner_offsets
        ] + [
            write_point_3d(staircase.upper_point + offset, upper_z)
            for offset in corner_offsets
        ]
        writer.add(
            "IFCSTAIRFLIGHT",
            f"'{guid()}','{_escape(staircase.staircase_id)}',"
            "(" + ",".join(f"#{ref}" for ref in point_refs) + ")",
        )

    header = (
        "ISO-10303-21;\n"
        "HEADER;\n"
        "FILE_DESCRIPTION(('Vita synthetic DBI export'),'2;1');\n"
        f"FILE_NAME('{_escape(building.building_id)}.ifc','2016-09-05',('vita'),"
        "('vita'),'','','');\n"
        "FILE_SCHEMA(('IFC2X3'));\n"
        "ENDSEC;\n"
        "DATA;\n"
    )
    footer = "ENDSEC;\nEND-ISO-10303-21;\n"
    return header + "\n".join(writer.lines) + "\n" + footer


def write_ifc(
    building: Building,
    path: str,
    injection: Optional[ErrorInjection] = None,
) -> str:
    """Serialise *building* and write it to *path*; return the path."""
    text = building_to_ifc(building, injection)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return path


__all__ = ["ErrorInjection", "building_to_ifc", "write_ifc"]
