"""Typed views over the IFC entity subset used by the DBI processor.

Only the entity types needed to describe the indoor structure that Vita
consumes are modelled:

* ``IFCBUILDING`` — the building itself;
* ``IFCBUILDINGSTOREY`` — a floor with an elevation;
* ``IFCSPACE`` — a partition (room / hallway) with a 2D footprint polyline;
* ``IFCDOOR`` — a door placed at a point on a storey (its connected
  partitions are *not* stored in IFC; the extractor recovers them);
* ``IFCSTAIRFLIGHT`` — a staircase described only as a set of disjoint 3D
  points (Section 4.1), whose floor/partition connectivity the extractor has
  to reconstruct;
* ``IFCCARTESIANPOINT`` / ``IFCPOLYLINE`` — shared geometry resources.

The attribute layouts follow the conventions emitted by
:mod:`repro.ifc.writer`; they are a simplification of the real IFC schema
(which routes placement through ``IfcLocalPlacement`` chains) but keep the
same information content for Vita's purposes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class IfcCartesianPoint:
    """A 2D or 3D point resource."""

    entity_id: int
    coordinates: Tuple[float, ...]

    @property
    def x(self) -> float:
        return self.coordinates[0]

    @property
    def y(self) -> float:
        return self.coordinates[1]

    @property
    def z(self) -> float:
        """Z coordinate (0 for 2D points)."""
        return self.coordinates[2] if len(self.coordinates) > 2 else 0.0

    @property
    def is_3d(self) -> bool:
        return len(self.coordinates) >= 3


@dataclass(frozen=True)
class IfcPolyline:
    """An ordered list of point references forming a footprint boundary."""

    entity_id: int
    points: Tuple[IfcCartesianPoint, ...]

    def xy(self) -> List[Tuple[float, float]]:
        """The polyline as a list of (x, y) tuples."""
        return [(p.x, p.y) for p in self.points]


@dataclass(frozen=True)
class IfcBuilding:
    """The building entity."""

    entity_id: int
    global_id: str
    name: str
    long_name: str = ""


@dataclass(frozen=True)
class IfcBuildingStorey:
    """A storey with its elevation above the building datum."""

    entity_id: int
    global_id: str
    name: str
    elevation: float
    building_ref: Optional[int] = None


@dataclass(frozen=True)
class IfcSpace:
    """A partition: footprint polyline on a specific storey."""

    entity_id: int
    global_id: str
    name: str
    long_name: str
    storey_ref: int
    boundary: IfcPolyline
    usage: str = "room"


@dataclass(frozen=True)
class IfcDoor:
    """A door placed at a point on a storey.

    Note that the connected partitions are intentionally absent: "Connected
    partitions for each door are identified through topology and geometry
    computations" (Section 4.1).
    """

    entity_id: int
    global_id: str
    name: str
    storey_ref: int
    position: IfcCartesianPoint
    width: float = 1.0


@dataclass(frozen=True)
class IfcStairFlight:
    """A staircase given only as a set of disjoint 3D points.

    "IFC models a staircase as a set of disjointed 3D points, but its
    connectivity to other partitions is missing" (Section 4.1).  The extractor
    recovers the upper/lower connected floors and partitions.
    """

    entity_id: int
    global_id: str
    name: str
    points: Tuple[IfcCartesianPoint, ...]

    def z_values(self) -> List[float]:
        """Distinct z elevations present among the stair points, ascending."""
        return sorted({round(p.z, 6) for p in self.points})

    def points_at_z(self, z: float, tolerance: float = 1e-3) -> List[IfcCartesianPoint]:
        """Stair points lying at elevation *z*."""
        return [p for p in self.points if abs(p.z - z) <= tolerance]


@dataclass
class IfcModel:
    """The typed contents of one parsed IFC file."""

    building: Optional[IfcBuilding] = None
    storeys: List[IfcBuildingStorey] = field(default_factory=list)
    spaces: List[IfcSpace] = field(default_factory=list)
    doors: List[IfcDoor] = field(default_factory=list)
    stairs: List[IfcStairFlight] = field(default_factory=list)

    def storeys_by_elevation(self) -> List[IfcBuildingStorey]:
        """Storeys sorted bottom-up."""
        return sorted(self.storeys, key=lambda storey: storey.elevation)

    def spaces_on(self, storey_entity_id: int) -> List[IfcSpace]:
        """Spaces whose storey reference is *storey_entity_id*."""
        return [s for s in self.spaces if s.storey_ref == storey_entity_id]

    def doors_on(self, storey_entity_id: int) -> List[IfcDoor]:
        """Doors whose storey reference is *storey_entity_id*."""
        return [d for d in self.doors if d.storey_ref == storey_entity_id]

    @property
    def entity_counts(self) -> dict:
        """Summary counts, useful for logs and the DBI-processing benchmark."""
        return {
            "storeys": len(self.storeys),
            "spaces": len(self.spaces),
            "doors": len(self.doors),
            "stairs": len(self.stairs),
        }


__all__ = [
    "IfcCartesianPoint",
    "IfcPolyline",
    "IfcBuilding",
    "IfcBuildingStorey",
    "IfcSpace",
    "IfcDoor",
    "IfcStairFlight",
    "IfcModel",
]
