"""Replay: drive standing monitors over an already-stored warehouse.

The second drive mode of the continuous-query engine.  Where attached mode
consumes records as the streaming pipeline writes them, ``replay`` scans the
stored datasets back out *through the query planner* — a single time-ordered
builder query per dataset, pushed down to indexed SQL on SQLite and the time
index on the memory engine — and feeds the very same :class:`LiveEngine`.

Because both modes run identical evaluation code over the same record
multiset (the stream is what was stored), every monitor's finalized window
sequence is identical between a generation run with monitors attached and a
later replay over its warehouse.  That replay-equivalence contract is what
makes monitors *testable*: any monitor can be validated offline against the
warehouse it would have watched live (``tests/properties/test_property_live``
pins it down across random buildings, seeds and window shapes).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional

from repro.live.engine import GeofenceAlert, LiveEngine, LiveReport
from repro.live.monitors import Monitor


def replay(
    warehouse: Any,
    monitors: Iterable[Monitor],
    *,
    spatial: Any = None,
    on_alert: Optional[Callable[[GeofenceAlert], None]] = None,
    batch_size: int = 5000,
    telemetry: Any = None,
) -> LiveReport:
    """Evaluate *monitors* over everything *warehouse* already stores.

    Args:
        warehouse: a :class:`~repro.storage.repositories.DataWarehouse` (or
            anything exposing ``query(dataset)``).
        monitors: the standing monitors to evaluate.
        spatial: optional :class:`~repro.spatial.SpatialService` used for
            region/kNN pruning (results are identical without it).
        on_alert: geofence alert callback; alerts fire in time order here
            (the scan order), once per ``batch_size`` records.
        batch_size: how many rows to feed between alert drains — replay's
            analogue of the streaming path's ``flush_every`` cadence.
        telemetry: optional :class:`~repro.obs.Telemetry`; the engine records
            its live gauges/counters (records fed, queue depth, finalize
            latency) into it.  Instrumentation never changes emission.

    Returns:
        The :class:`LiveReport` with every monitor's finalized windows.
    """
    engine = LiveEngine(
        monitors,
        spatial=spatial,
        on_alert=on_alert,
        metrics=telemetry.metrics if telemetry is not None else None,
        tracer=telemetry.tracer if telemetry is not None else None,
    )
    for dataset in engine.datasets:
        # One streaming, time-ordered scan per dataset: the planner pushes
        # the order-by into the engine's index, and per-object time order
        # (all the per-object state machines need) follows from the global
        # one.  Feeding in bounded batches keeps the alert queue drained at
        # the same cadence a streaming run's flushes would.
        engine.begin_shard(None)
        rows = warehouse.query(dataset).order_by("t").iter()
        batch = []
        for row in rows:
            batch.append(row)
            if len(batch) >= batch_size:
                engine.feed(dataset, batch)
                engine.end_shard()
                engine.begin_shard(None)
                batch = []
        engine.feed(dataset, batch)
        engine.end_shard()
    return engine.finalize()


__all__ = ["replay"]
