"""The immutable standing-monitor grammar of the continuous-query engine.

A :class:`Monitor` is to the live subsystem what
:class:`repro.storage.query.Query` is to the offline one: an immutable,
declarative description of a computation, built fluently and compiled into a
frozen :class:`MonitorPlan` before any data flows.  Five monitor kinds cover
the continuous indoor-monitoring questions the paper's Data Stream APIs were
designed to feed:

>>> Monitor.density(floor=1).window(60).slide(30)            # occupancy
>>> Monitor.flow("p_1_0", "p_1_2").window(120)               # partition flow
>>> Monitor.geofence((0, 0, 10, 10), floor=1)                # enter/exit alerts
>>> Monitor.knn((5.0, 5.0), k=3, floor=1).window(30)         # nearest objects
>>> Monitor.visit_counts(top_k=5).window(300)                # popular POIs

Every monitor evaluates over *sliding windows* of the generation clock:
window ``i`` spans ``[i * slide, i * slide + window]``, inclusive on both
ends exactly like :meth:`Query.during`, so each finalized window result has a
well-defined offline equivalent over the stored warehouse (the
replay-equivalence contract, see ``docs/live.md``).  ``where`` predicates
reuse the builder's operator spellings and value coercion, so a monitor
predicate and the equivalent offline ``where`` always agree.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace
from typing import Any, Callable, Optional, Tuple

from repro.core.errors import MonitorError
from repro.storage.plan import Filter, Region

#: Monitor kinds the engine evaluates.
MONITOR_KINDS = ("density", "flow", "geofence", "knn", "visit_counts")

#: Operator spellings accepted by :meth:`Monitor.where` (same set as the
#: offline query builder, so predicates translate one-to-one).
_WHERE_OPS = {
    "=": "==",
    **{op: op for op in ("==", "!=", "<", "<=", ">", ">=", "in", "not_in", "between")},
}

#: ``COLUMN<OP>VALUE`` conditions, longest operator first (``>=`` beats ``>``).
_CONDITION_PATTERN = re.compile(r"^\s*(\w+)\s*(==|!=|>=|<=|=|>|<)\s*(.*?)\s*$")


def parse_condition(condition: str) -> Tuple[str, str, Any]:
    """``'rssi>=-60'`` -> ``("rssi", ">=", -60.0)`` (values parsed as JSON).

    The textual predicate syntax shared by the CLI ``--where`` flag and the
    ``monitors:`` configuration section.
    """
    import json

    match = _CONDITION_PATTERN.match(condition)
    if match is None:
        raise MonitorError(
            f"cannot parse condition {condition!r}; expected COLUMN<OP>VALUE "
            "with one of ==, !=, >=, <=, =, >, <"
        )
    column, op, raw = match.groups()
    try:
        value = json.loads(raw)
    except json.JSONDecodeError:
        value = raw  # bare strings need no quoting
    return column, op, value


def as_region(box: Any) -> Region:
    """Normalise a BoundingBox-like or 4-sequence into a :class:`Region`."""
    if isinstance(box, Region):
        return box
    if hasattr(box, "min_x"):
        region = Region(float(box.min_x), float(box.min_y), float(box.max_x), float(box.max_y))
    else:
        try:
            min_x, min_y, max_x, max_y = box
        except (TypeError, ValueError):
            raise MonitorError(
                "a region must be a BoundingBox or a (min_x, min_y, max_x, max_y) sequence"
            )
        region = Region(float(min_x), float(min_y), float(max_x), float(max_y))
    if region.min_x > region.max_x or region.min_y > region.max_y:
        raise MonitorError("region must have min <= max on both axes")
    return region


@dataclass(frozen=True)
class MonitorPlan:
    """The frozen description one :class:`Monitor` compiles to.

    Only the fields its ``kind`` uses are populated; :meth:`validate`
    enforces the per-kind requirements.  ``window`` defaults to 60 seconds
    and ``slide`` to the window (tumbling) unless set explicitly.
    """

    kind: str
    dataset: str = "trajectory"
    name: Optional[str] = None
    window: float = 60.0
    slide: Optional[float] = None
    filters: Tuple[Filter, ...] = ()
    floor_id: Optional[int] = None
    partition_id: Optional[str] = None
    region: Optional[Region] = None
    #: Flow endpoints (``flow`` monitors only).
    from_partition: Optional[str] = None
    to_partition: Optional[str] = None
    #: Query point and result size (``knn`` monitors only).
    x: Optional[float] = None
    y: Optional[float] = None
    k: int = 5
    #: Result size of ``visit_counts`` monitors.
    top_k: int = 5
    #: Which geofence transitions raise alerts ("enter", "exit").
    alert_on: Tuple[str, ...] = ("enter", "exit")

    @property
    def slide_seconds(self) -> float:
        """The effective slide (defaults to the window: tumbling)."""
        return self.window if self.slide is None else self.slide

    def validate(self) -> "MonitorPlan":
        """Check per-kind requirements; returns self so calls chain."""
        if self.kind not in MONITOR_KINDS:
            raise MonitorError(
                f"unknown monitor kind {self.kind!r}; expected one of {MONITOR_KINDS}"
            )
        if self.window <= 0:
            raise MonitorError("monitor window must be positive")
        if self.slide is not None and self.slide <= 0:
            raise MonitorError("monitor slide must be positive")
        if self.kind == "density" and not any(
            (self.region is not None, self.partition_id is not None, self.floor_id is not None)
        ):
            raise MonitorError(
                "density() needs a target: a region, a partition or a floor"
            )
        if self.region is not None and self.floor_id is None:
            raise MonitorError(
                f"{self.kind}() with a region needs a floor (coordinates are per floor)"
            )
        if self.kind == "flow" and not (self.from_partition and self.to_partition):
            raise MonitorError("flow() needs both a from- and a to-partition")
        if self.kind == "flow" and self.from_partition == self.to_partition:
            raise MonitorError("flow() endpoints must be two distinct partitions")
        if self.kind == "geofence" and self.region is None:
            raise MonitorError("geofence() needs a region")
        if self.kind == "geofence":
            unknown = [k for k in self.alert_on if k not in ("enter", "exit")]
            if unknown:
                raise MonitorError(f"geofence() alert kinds must be enter/exit, got {unknown}")
        if self.kind == "knn":
            if self.x is None or self.y is None or self.floor_id is None:
                raise MonitorError("knn() needs a point and a floor")
            if self.k < 1:
                raise MonitorError("knn() needs k >= 1")
        if self.kind == "visit_counts" and self.top_k < 1:
            raise MonitorError("visit_counts() needs top_k >= 1")
        return self

    def describe(self) -> str:
        """A compact human-readable label, used as the default monitor name."""
        parts = []
        if self.partition_id is not None:
            parts.append(f"partition={self.partition_id}")
        if self.floor_id is not None:
            parts.append(f"floor={self.floor_id}")
        if self.region is not None:
            parts.append(f"region=({self.region.min_x:g},{self.region.min_y:g},"
                         f"{self.region.max_x:g},{self.region.max_y:g})")
        if self.kind == "flow":
            parts.append(f"{self.from_partition}->{self.to_partition}")
        if self.kind == "knn":
            parts.append(f"point=({self.x:g},{self.y:g}) k={self.k}")
        if self.kind == "visit_counts":
            parts.append(f"top_k={self.top_k}")
        inner = " ".join(parts)
        return f"{self.kind}[{inner}]" if inner else self.kind


class Monitor:
    """An immutable standing monitor: every verb returns a new builder."""

    def __init__(self, _plan: MonitorPlan) -> None:
        self._plan = _plan

    # ------------------------------------------------------------------ #
    # Constructors (one per monitor kind)
    # ------------------------------------------------------------------ #
    @classmethod
    def density(
        cls,
        region: Any = None,
        *,
        partition: Optional[str] = None,
        floor: Optional[int] = None,
    ) -> "Monitor":
        """Distinct objects observed per window in a region, partition or floor."""
        return cls(
            MonitorPlan(
                kind="density",
                region=as_region(region) if region is not None else None,
                partition_id=partition,
                floor_id=int(floor) if floor is not None else None,
            ).validate()
        )

    @classmethod
    def flow(cls, from_partition: str, to_partition: str) -> "Monitor":
        """Transitions from one partition into another, counted per window.

        A transition happens at the time of the first sample an object takes
        in *to_partition* when its immediately preceding sample was in
        *from_partition*.
        """
        return cls(
            MonitorPlan(
                kind="flow",
                from_partition=str(from_partition),
                to_partition=str(to_partition),
            ).validate()
        )

    @classmethod
    def geofence(
        cls, region: Any, *, floor: int, on: Tuple[str, ...] = ("enter", "exit")
    ) -> "Monitor":
        """Enter/exit alerts (and per-window event lists) for a floor region."""
        return cls(
            MonitorPlan(
                kind="geofence",
                region=as_region(region),
                floor_id=int(floor),
                alert_on=tuple(on),
            ).validate()
        )

    @classmethod
    def knn(cls, point: Any, k: int = 5, *, floor: int) -> "Monitor":
        """The *k* objects whose closest in-window sample is nearest *point*.

        Per window, each object's distance is the minimum distance over its
        samples in the window on *floor*; ties break by object id.
        """
        if hasattr(point, "x"):
            x, y = float(point.x), float(point.y)
        else:
            x, y = (float(value) for value in point)
        return cls(
            MonitorPlan(kind="knn", x=x, y=y, k=int(k), floor_id=int(floor)).validate()
        )

    @classmethod
    def visit_counts(cls, top_k: int = 5) -> "Monitor":
        """Per window, the *top_k* partitions by distinct visiting objects."""
        return cls(MonitorPlan(kind="visit_counts", top_k=int(top_k)).validate())

    # ------------------------------------------------------------------ #
    # Chainable verbs
    # ------------------------------------------------------------------ #
    def _derive(self, **changes: Any) -> "Monitor":
        return Monitor(replace(self._plan, **changes).validate())

    def window(self, seconds: float) -> "Monitor":
        """Evaluate over windows of *seconds* (inclusive bounds, like ``during``)."""
        return self._derive(window=float(seconds))

    def slide(self, seconds: float) -> "Monitor":
        """Advance the window start every *seconds* (default: tumbling).

        A slide larger than the window is allowed and leaves sampling gaps
        between consecutive windows.
        """
        return self._derive(slide=float(seconds))

    def where(self, *condition: Any, **equalities: Any) -> "Monitor":
        """Filter the record stream feeding this monitor.

        Accepts the query builder's three spellings — keyword equalities, a
        ``(column, op, value)`` triple, or a single callable predicate — plus
        a textual ``'COLUMN<OP>VALUE'`` condition (the CLI/JSON form).
        Values are coerced with the builder's rules, so the live predicate
        and the equivalent offline ``where`` always match the same rows.
        """
        # Local import: keeps the grammar importable without dragging in the
        # storage engines (and avoids a config -> live -> backends cycle).
        from repro.storage.backends.base import coerce_value, dataset_spec

        spec = dataset_spec(self._plan.dataset)

        def check(column: str) -> str:
            if column not in spec.columns:
                raise MonitorError(
                    f"dataset {self._plan.dataset!r} has no column {column!r}; "
                    f"columns are {list(spec.columns)}"
                )
            return column

        def coerced(column: str, op: str, value: Any) -> Any:
            if op in ("in", "not_in"):
                return tuple(
                    member if member is None else coerce_value(column, member)
                    for member in value
                )
            if op == "between":
                low, high = value
                return (coerce_value(column, low), coerce_value(column, high))
            return coerce_value(column, value)

        filters = list(self._plan.filters)
        if condition:
            if len(condition) == 1 and callable(condition[0]):
                filters.append(Filter("*", "python", condition[0]))
            elif len(condition) == 1 and isinstance(condition[0], str):
                column, op, value = parse_condition(condition[0])
                column = check(column)
                op = _WHERE_OPS[op]
                filters.append(Filter(column, op, coerced(column, op, value)))
            elif len(condition) == 3:
                column, op, value = condition
                if op not in _WHERE_OPS:
                    raise MonitorError(
                        f"unknown operator {op!r}; expected one of "
                        f"{sorted(set(_WHERE_OPS.values()))}"
                    )
                op = _WHERE_OPS[op]
                column = check(column)
                filters.append(Filter(column, op, coerced(column, op, value)))
            else:
                raise MonitorError(
                    "where() takes keyword equalities, a (column, op, value) "
                    "triple, a 'COLUMN<OP>VALUE' string, or a callable predicate"
                )
        for column, value in equalities.items():
            column = check(column)
            filters.append(Filter(column, "==", coerced(column, "==", value)))
        return self._derive(filters=tuple(filters))

    def filter(self, predicate: Callable[[dict], bool]) -> "Monitor":
        """Alias for ``where(predicate)`` — an explicit Python predicate."""
        return self.where(predicate)

    def named(self, name: str) -> "Monitor":
        """Set the monitor's subscription name (defaults to a descriptive label)."""
        if not name:
            raise MonitorError("a monitor name must be non-empty")
        return self._derive(name=str(name))

    # ------------------------------------------------------------------ #
    # Compilation
    # ------------------------------------------------------------------ #
    def plan(self) -> MonitorPlan:
        """The validated frozen plan this builder describes."""
        return self._plan.validate()

    @property
    def kind(self) -> str:
        return self._plan.kind

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Monitor({self._plan.describe()})"


__all__ = [
    "MONITOR_KINDS",
    "Monitor",
    "MonitorPlan",
    "as_region",
    "parse_condition",
]
