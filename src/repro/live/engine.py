"""The incremental evaluator behind the standing monitors.

The engine turns the streaming generation pipeline into a serving surface:
records flow through once, each record touches only the sliding windows it
overlaps, and every monitor's per-window aggregate is maintained in O(delta)
— no window is ever recomputed from its raw records, and no raw record is
retained after its aggregates absorbed it.

Three structural ideas keep this both fast and deterministic:

* **Shared window assignment** — monitors are grouped by
  ``(dataset, window, slide)``; the overlapping-window computation and the
  row-dict conversion happen once per record per group, shared by every
  monitor in the group.
* **Per-shard partials** — window aggregates accumulate in a
  :class:`ShardPartial` (sets, counts, minima — all commutative merges) that
  folds into the global window states *in shard order*, making ``workers=N``
  emission identical to serial by construction.  The per-object state
  machines flow and geofence monitors need live on the monitor runtime:
  feeding is strictly sequential in shard order and no object spans two
  shards (the PR 3 partition is by object), so the machines see each
  object's samples contiguously in time order in every drive mode.
* **Bounded backpressure** — alerts drain through the ``on_alert`` callback
  at every shard merge; without a callback the *undrained* queue is a
  bounded deque (budget defaults to the storage layer's ``flush_every``),
  dropping the oldest and counting the drops.  The finalized
  :class:`MonitorResult` still reports every alert (it is part of the
  replay-equivalence contract), so the report itself scales with the alert
  count — the bound protects the live queue, not the final report.

Results are only *finalized* at the end of the stream (records arrive
shard-ordered, not time-ordered, so no window can close early); the
finalized sequence per monitor is the replay-equivalence contract's subject:
identical between attached streaming, ``replay()`` over the stored
warehouse, and the equivalent offline builder query.
"""

from __future__ import annotations

import math
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.errors import MonitorError
from repro.live.monitors import Monitor, MonitorPlan
from repro.obs import MetricsRegistry, Tracer
from repro.storage.plan import Row

#: Shared no-op instrumentation for unobserved engines (module-level so an
#: uninstrumented engine allocates nothing per instance).
_NULL_METRICS = MetricsRegistry(enabled=False)
_NULL_TRACER = Tracer(enabled=False)

#: Map from warehouse repository attribute names (the StreamingWriter's
#: vocabulary) to logical dataset names (the monitor grammar's vocabulary).
REPO_DATASETS = {
    "trajectories": "trajectory",
    "rssi": "rssi",
    "positioning": "positioning",
    "probabilistic": "probabilistic",
    "proximity": "proximity",
    "devices": "device",
}


@dataclass(frozen=True)
class GeofenceAlert:
    """One geofence transition: *object_id* crossed *monitor*'s region at *t*."""

    monitor: str
    t: float
    object_id: str
    kind: str  # "enter" | "exit"

    def to_json(self) -> Dict[str, Any]:
        return {"monitor": self.monitor, "t": self.t,
                "object_id": self.object_id, "event": self.kind}


@dataclass(frozen=True)
class WindowResult:
    """One finalized window of one monitor."""

    index: int
    t_start: float
    t_end: float
    value: Any

    def to_json(self) -> Dict[str, Any]:
        return {"window": self.index, "t_start": self.t_start,
                "t_end": self.t_end, "value": _value_to_json(self.value)}


def _value_to_json(value: Any) -> Any:
    if isinstance(value, tuple):
        return [_value_to_json(item) for item in value]
    return value


@dataclass
class MonitorResult:
    """Everything one monitor produced over the whole stream."""

    name: str
    plan: MonitorPlan
    windows: List[WindowResult] = field(default_factory=list)
    alerts: List[GeofenceAlert] = field(default_factory=list)
    records_matched: int = 0
    dropped_alerts: int = 0

    def values(self) -> List[Any]:
        """The per-window values alone (the emitted result sequence)."""
        return [window.value for window in self.windows]

    def to_json(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.plan.kind,
            "window": self.plan.window,
            "slide": self.plan.slide_seconds,
            "records_matched": self.records_matched,
            "dropped_alerts": self.dropped_alerts,
            "alerts": [alert.to_json() for alert in self.alerts],
            "windows": [window.to_json() for window in self.windows],
        }


@dataclass
class LiveReport:
    """The finalized output of one engine run (attached or replayed)."""

    results: Dict[str, MonitorResult]
    records_seen: int = 0
    shards_merged: int = 0

    def summary(self) -> Dict[str, Dict[str, int]]:
        """Per-monitor counters for streaming reports and CLI summaries."""
        return {
            name: {
                "windows": len(result.windows),
                "alerts": len(result.alerts),
                "records_matched": result.records_matched,
                "dropped_alerts": result.dropped_alerts,
            }
            for name, result in self.results.items()
        }

    def to_json(self) -> Dict[str, Any]:
        return {
            "records_seen": self.records_seen,
            "shards_merged": self.shards_merged,
            "monitors": {name: result.to_json() for name, result in self.results.items()},
        }


# --------------------------------------------------------------------------- #
# Per-monitor incremental aggregates
# --------------------------------------------------------------------------- #
class _MonitorState:
    """The per-shard incremental window state of one monitor.

    ``windows`` maps a window index to the monitor-kind-specific partial
    aggregate.  Every aggregate merges commutatively, so the shard-ordered
    merge gives the same totals as any other order — shard order is kept
    anyway so *alert* sequences are deterministic too.
    """

    __slots__ = ("windows", "events", "matched")

    def __init__(self) -> None:
        self.windows: Dict[int, Any] = {}
        self.events: List[GeofenceAlert] = []
        self.matched = 0


class _Runtime:
    """One subscribed monitor: its plan plus the evaluation strategy."""

    def __init__(self, name: str, plan: MonitorPlan, spatial: Any = None) -> None:
        self.name = name
        self.plan = plan
        self.records_matched = 0
        self.dropped_alerts = 0
        self.global_windows: Dict[int, Any] = {}
        self.global_events: List[GeofenceAlert] = []
        #: Per-object state machine (flow's previous partition, geofence's
        #: inside flag).  Feeding is strictly sequential in shard order and
        #: no object spans two shards, so this state can live globally —
        #: which also lets replay drain alerts mid-scan without losing it.
        self.object_state: Dict[str, Any] = {}
        #: The per-slide dedup gate: records of one object falling in the
        #: same window-index set carry idempotent contributions (a distinct
        #: set already holds the object; a min can only improve), so the
        #: second and later ones skip the per-window updates entirely.  This
        #: is what makes maintenance O(delta): per (windows, object[, key])
        #: combination the aggregates are touched once, not once per record.
        self.pane_gate: Dict[Tuple, Any] = {}
        #: Statically empty: the monitor's region cannot intersect its floor
        #: (SpatialService-backed pruning), so no record can ever match.
        self.static_empty = False
        #: Partition ids whose geometry can overlap the region (a conservative
        #: superset from the spatial service); ``None`` means "no prefilter".
        self.partition_prefilter: Optional[frozenset] = None
        if spatial is not None and plan.region is not None and plan.floor_id is not None:
            from repro.core.errors import TopologyError

            region = plan.region
            try:
                if not spatial.region_overlaps_floor(plan.floor_id, region):
                    self.static_empty = True
                elif plan.kind != "geofence":
                    self.partition_prefilter = spatial.partitions_overlapping(
                        plan.floor_id, region
                    )
            except TopologyError:
                # The building has no such floor: nothing will ever match.
                self.static_empty = True

    # ------------------------------------------------------------------ #
    # Record intake (shard-local)
    # ------------------------------------------------------------------ #
    def accept(self, row: Row) -> bool:
        """Whether *row* passes the monitor's target and predicate filters."""
        plan = self.plan
        if self.static_empty:
            return False
        if plan.floor_id is not None and row.get("floor_id") != plan.floor_id:
            return False
        if plan.partition_id is not None and row.get("partition_id") != plan.partition_id:
            return False
        if plan.region is not None and plan.kind != "geofence":
            # A geofence must also see out-of-region records (they are what
            # exits look like), so only non-geofence monitors may prune here.
            partition = row.get("partition_id")
            if (
                self.partition_prefilter is not None
                and partition
                and partition not in self.partition_prefilter
            ):
                return False
            if not plan.region.matches(row):
                return False
        if plan.kind == "knn" and (row.get("x") is None or row.get("y") is None):
            return False
        for predicate in plan.filters:
            if not predicate.matches(row):
                return False
        return True

    def absorb(self, state: _MonitorState, row: Row, indices: Sequence[int]) -> None:
        """Fold one accepted record into the shard-local aggregates."""
        kind = self.plan.kind
        state.matched += 1
        if kind == "density":
            gate = (indices, row["object_id"])
            if gate in self.pane_gate:
                return  # these windows already count this object
            self.pane_gate[gate] = True
            for index in indices:
                state.windows.setdefault(index, set()).add(row["object_id"])
        elif kind == "visit_counts":
            partition = row.get("partition_id")
            if partition:
                gate = (indices, row["object_id"], partition)
                if gate in self.pane_gate:
                    return
                self.pane_gate[gate] = True
                for index in indices:
                    state.windows.setdefault(index, {}).setdefault(
                        partition, set()
                    ).add(row["object_id"])
        elif kind == "knn":
            distance = math.hypot(row["x"] - self.plan.x, row["y"] - self.plan.y)
            gate = (indices, row["object_id"])
            best = self.pane_gate.get(gate)
            if best is not None and distance >= best:
                return  # every one of these windows already holds a better min
            self.pane_gate[gate] = distance
            for index in indices:
                window = state.windows.setdefault(index, {})
                previous = window.get(row["object_id"])
                if previous is None or distance < previous:
                    window[row["object_id"]] = distance
        elif kind == "flow":
            self._absorb_flow(state, row, indices)
        elif kind == "geofence":
            self._absorb_geofence(state, row, indices)

    def _absorb_flow(self, state: _MonitorState, row: Row, indices: Sequence[int]) -> None:
        object_id = row["object_id"]
        partition = row.get("partition_id")
        previous = self.object_state.get(object_id)
        self.object_state[object_id] = partition
        if (
            previous == self.plan.from_partition
            and partition == self.plan.to_partition
        ):
            for index in indices:
                state.windows[index] = state.windows.get(index, 0) + 1

    def _absorb_geofence(self, state: _MonitorState, row: Row, indices: Sequence[int]) -> None:
        object_id = row["object_id"]
        inside = self.plan.region.matches(row)
        was_inside = self.object_state.get(object_id, False)
        self.object_state[object_id] = inside
        if inside == was_inside:
            return
        kind = "enter" if inside else "exit"
        event = GeofenceAlert(self.name, row["t"], object_id, kind)
        for index in indices:
            state.windows.setdefault(index, []).append(event)
        if kind in self.plan.alert_on:
            state.events.append(event)

    # ------------------------------------------------------------------ #
    # Shard merge and finalization
    # ------------------------------------------------------------------ #
    def merge(self, state: _MonitorState) -> List[GeofenceAlert]:
        """Fold a shard partial into the global state; returns its alerts."""
        kind = self.plan.kind
        self.records_matched += state.matched
        for index, partial in state.windows.items():
            current = self.global_windows.get(index)
            if kind == "density":
                if current is None:
                    self.global_windows[index] = set(partial)
                else:
                    current |= partial
            elif kind == "visit_counts":
                if current is None:
                    current = self.global_windows[index] = {}
                for partition, objects in partial.items():
                    current.setdefault(partition, set()).update(objects)
            elif kind == "knn":
                if current is None:
                    current = self.global_windows[index] = {}
                for object_id, distance in partial.items():
                    previous = current.get(object_id)
                    if previous is None or distance < previous:
                        current[object_id] = distance
            elif kind == "flow":
                self.global_windows[index] = (current or 0) + partial
            elif kind == "geofence":
                if current is None:
                    current = self.global_windows[index] = []
                current.extend(partial)
        self.global_events.extend(state.events)
        return state.events

    def window_value(self, index: int) -> Any:
        """The finalized, deterministic value of window *index*."""
        kind = self.plan.kind
        partial = self.global_windows.get(index)
        if kind == "density":
            return len(partial) if partial else 0
        if kind == "flow":
            return partial or 0
        if kind == "visit_counts":
            if not partial:
                return ()
            ranked = sorted(
                ((partition, len(objects)) for partition, objects in partial.items()),
                key=lambda item: (-item[1], item[0]),
            )
            return tuple(ranked[: self.plan.top_k])
        if kind == "knn":
            if not partial:
                return ()
            ranked = sorted(partial.items(), key=lambda item: (item[1], item[0]))
            return tuple(ranked[: self.plan.k])
        # geofence: the window's events, deterministically ordered.  Sorting
        # at finalization makes the value independent of arrival order (which
        # differs between attached mode and time-ordered replay).
        if not partial:
            return ()
        ordered = sorted(partial, key=lambda e: (e.t, e.object_id, e.kind))
        return tuple((e.t, e.object_id, e.kind) for e in ordered)


# --------------------------------------------------------------------------- #
# The engine
# --------------------------------------------------------------------------- #
class ShardPartial:
    """All monitor state accumulated from one shard's records."""

    __slots__ = ("shard_id", "states", "records")

    def __init__(self, shard_id: Optional[int], names: Iterable[str]) -> None:
        self.shard_id = shard_id
        self.states: Dict[str, _MonitorState] = {name: _MonitorState() for name in names}
        self.records = 0


class LiveEngine:
    """Evaluates standing monitors incrementally over a record stream.

    Drive protocol (both drive modes use exactly this sequence)::

        engine = LiveEngine([monitor, ...], spatial=service, on_alert=print)
        engine.begin_shard(0)
        engine.feed("trajectory", records)   # any number of feeds
        engine.end_shard()                   # merge + drain alerts
        ...                                  # further shards, in shard order
        report = engine.finalize()

    ``feed`` accepts typed records (anything with ``as_record()``) or plain
    row dicts.  Subscribing after the first record has been fed raises — a
    late subscriber would silently miss windows.
    """

    def __init__(
        self,
        monitors: Iterable[Monitor] = (),
        *,
        spatial: Any = None,
        on_alert: Optional[Callable[[GeofenceAlert], None]] = None,
        max_pending_alerts: int = 5000,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if max_pending_alerts < 1:
            raise MonitorError("max_pending_alerts must be at least 1")
        self._spatial = spatial
        self.on_alert = on_alert
        #: Live-engine instruments (records/sec, window-finalize latency,
        #: alert-queue depth and drops); no-op unless a registry is attached.
        self.metrics = metrics if metrics is not None else _NULL_METRICS
        self.tracer = tracer if tracer is not None else _NULL_TRACER
        self._first_feed: Optional[float] = None
        #: Undrained alerts (no ``on_alert`` callback): bounded so a chatty
        #: geofence cannot grow memory without bound; overflow drops the
        #: oldest alert and counts it on the owning monitor.
        self.pending_alerts: deque = deque(maxlen=int(max_pending_alerts))
        self.records_seen = 0
        self.shards_merged = 0
        self._runtimes: Dict[str, _Runtime] = {}
        self._groups: Dict[Tuple[str, float, float], List[_Runtime]] = {}
        #: Per (window, slide) group: timestamp -> window-index tuple.  The
        #: generation clock samples on a fixed grid, so the distinct t count
        #: is tiny next to the record count and the shared assignment is a
        #: dict hit for almost every record.
        self._index_memo: Dict[Tuple[float, float], Dict[float, Tuple[int, ...]]] = {}
        self._t_max: Dict[str, float] = {}
        self._partial: Optional[ShardPartial] = None
        self._started = False
        self._finalized = False
        for monitor in monitors:
            self.subscribe(monitor)

    # ------------------------------------------------------------------ #
    # Subscription registry
    # ------------------------------------------------------------------ #
    def subscribe(self, monitor: Monitor) -> str:
        """Register *monitor*; returns its unique subscription name."""
        if self._started or self._partial is not None:
            raise MonitorError(
                "cannot subscribe once a shard is open or records have been "
                "fed; a late monitor would silently miss windows"
            )
        plan = monitor.plan()
        base = plan.name or plan.describe()
        name = base
        serial = 2
        while name in self._runtimes:
            name = f"{base}#{serial}"
            serial += 1
        runtime = _Runtime(name, plan, spatial=self._spatial)
        self._runtimes[name] = runtime
        key = (plan.dataset, plan.window, plan.slide_seconds)
        self._groups.setdefault(key, []).append(runtime)
        return name

    @property
    def names(self) -> List[str]:
        """The registered subscription names, in subscription order."""
        return list(self._runtimes)

    @property
    def datasets(self) -> List[str]:
        """The datasets at least one monitor consumes."""
        return sorted({runtime.plan.dataset for runtime in self._runtimes.values()})

    def __len__(self) -> int:
        return len(self._runtimes)

    # ------------------------------------------------------------------ #
    # Record intake
    # ------------------------------------------------------------------ #
    def begin_shard(self, shard_id: Optional[int] = None) -> None:
        """Open a shard partial; subsequent feeds accumulate into it."""
        self._check_not_finalized()
        if self._partial is not None:
            self.end_shard()
        self._partial = ShardPartial(shard_id, self._runtimes)

    def feed(self, dataset: str, records: Iterable[Any]) -> int:
        """Stream *records* of *dataset* into the monitors; returns the count.

        Typed records are converted to row dicts once and shared across every
        monitor; each row touches only the windows it overlaps (O(delta)).
        """
        self._check_not_finalized()
        groups = [
            (window, slide, runtimes,
             self._index_memo.setdefault((window, slide), {}))
            for (ds, window, slide), runtimes in self._groups.items()
            if ds == dataset
        ]
        if not groups:
            return 0
        count = 0
        if self._partial is None:
            self.begin_shard(None)
        self._started = True
        partial = self._partial
        for record in records:
            row = record.as_record() if hasattr(record, "as_record") else record
            count += 1
            t = row["t"]
            t_max = self._t_max.get(dataset)
            if t_max is None or t > t_max:
                self._t_max[dataset] = t
            for window, slide, runtimes, memo in groups:
                indices = memo.get(t)
                if indices is None:
                    indices = memo[t] = _window_indices(t, window, slide)
                for runtime in runtimes:
                    if runtime.accept(row):
                        runtime.absorb(partial.states[runtime.name], row, indices)
        partial.records += count
        self.records_seen += count
        if count and self._first_feed is None:
            self._first_feed = time.perf_counter()
        self.metrics.counter("live.records_fed").inc(count)
        return count

    def writer_hook(self) -> Callable[[str, Sequence[Any]], None]:
        """An adapter for :class:`~repro.core.streaming.StreamingWriter`.

        The writer calls it with ``(repo_name, records)`` at every flush, so
        monitors consume the stream at exactly the flush-bounded cadence the
        memory budget already pays for.
        """

        def hook(repo_name: str, records: Sequence[Any]) -> None:
            dataset = REPO_DATASETS.get(repo_name, repo_name)
            self.feed(dataset, records)

        return hook

    def end_shard(self) -> None:
        """Merge the open shard partial into the global state, drain alerts."""
        self._check_not_finalized()
        partial = self._partial
        self._partial = None
        if partial is None:
            return
        self.shards_merged += 1
        for name, runtime in self._runtimes.items():
            alerts = runtime.merge(partial.states[name])
            for alert in alerts:
                self.metrics.counter("live.alerts_emitted").inc()
                if self.on_alert is not None:
                    self.on_alert(alert)
                else:
                    if len(self.pending_alerts) == self.pending_alerts.maxlen:
                        # The deque evicts its oldest entry; charge the drop
                        # to the monitor that owned the evicted alert.
                        evicted = self.pending_alerts[0]
                        self._runtimes[evicted.monitor].dropped_alerts += 1
                        self.metrics.counter("live.alerts_dropped").inc()
                    self.pending_alerts.append(alert)
        self.metrics.gauge("live.alert_queue_depth").set(len(self.pending_alerts))
        if self._first_feed is not None:
            elapsed = time.perf_counter() - self._first_feed
            if elapsed > 0:
                self.metrics.gauge("live.records_per_second").set(
                    self.records_seen / elapsed
                )

    # ------------------------------------------------------------------ #
    # Finalization
    # ------------------------------------------------------------------ #
    def finalize(self) -> LiveReport:
        """Close the stream and emit every monitor's window-result sequence.

        Windows are enumerated per monitor from 0 while their start does not
        exceed the dataset's maximum observed record time — exactly the
        windows the equivalent offline queries would produce from the stored
        data's time bounds.  Idempotent: a second call raises.
        """
        self._check_not_finalized()
        if self._partial is not None:
            self.end_shard()
        self._finalized = True
        results: Dict[str, MonitorResult] = {}
        for name, runtime in self._runtimes.items():
            plan = runtime.plan
            windows: List[WindowResult] = []
            t_max = self._t_max.get(plan.dataset)
            finalize_start = time.perf_counter()
            with self.tracer.span("monitor.window-finalize", monitor=name):
                if t_max is not None:
                    slide = plan.slide_seconds
                    index = 0
                    while index * slide <= t_max:
                        start = index * slide
                        windows.append(
                            WindowResult(index, start, start + plan.window,
                                         runtime.window_value(index))
                        )
                        index += 1
            self.metrics.histogram("live.window_finalize_seconds").observe(
                time.perf_counter() - finalize_start
            )
            results[name] = MonitorResult(
                name=name,
                plan=plan,
                windows=windows,
                alerts=list(runtime.global_events),
                records_matched=runtime.records_matched,
                dropped_alerts=runtime.dropped_alerts,
            )
        return LiveReport(
            results=results,
            records_seen=self.records_seen,
            shards_merged=self.shards_merged,
        )

    def _check_not_finalized(self) -> None:
        if self._finalized:
            raise MonitorError("this engine has been finalized; build a new one")


def _window_indices(t: float, window: float, slide: float) -> Tuple[int, ...]:
    """The sliding-window indices whose ``[i*slide, i*slide + window]`` span
    (inclusive on both ends, like ``Query.during``) contains *t*.

    The candidate range comes from float division, but membership itself is
    decided by direct comparison against the window bounds — the exact
    comparisons the offline ``during`` filter performs — so a boundary record
    lands in the same windows live and replayed.
    """
    if t < 0:
        return ()
    first = max(0, math.ceil((t - window) / slide) - 1)
    last = math.floor(t / slide) + 1
    return tuple(
        index
        for index in range(first, last + 1)
        if index * slide <= t <= index * slide + window
    )


__all__ = [
    "GeofenceAlert",
    "LiveEngine",
    "LiveReport",
    "MonitorResult",
    "REPO_DATASETS",
    "ShardPartial",
    "WindowResult",
]
