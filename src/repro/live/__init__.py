"""The continuous-query subsystem: standing monitors over the live stream.

Public surface:

* :class:`~repro.live.monitors.Monitor` — the immutable monitor grammar
  (``density`` / ``flow`` / ``geofence`` / ``knn`` / ``visit_counts``, each
  with ``window`` / ``slide`` / ``where``);
* :class:`~repro.live.engine.LiveEngine` — the subscription registry and
  incremental evaluator (attached to streaming generation or driven by
  hand);
* :func:`~repro.live.replay.replay` — evaluate monitors over an existing
  warehouse through the query planner;
* the result types: :class:`~repro.live.engine.LiveReport`,
  :class:`~repro.live.engine.MonitorResult`,
  :class:`~repro.live.engine.WindowResult`,
  :class:`~repro.live.engine.GeofenceAlert`.

See ``docs/live.md`` for the grammar, the window model and the
replay-equivalence contract.
"""

from repro.live.engine import (
    GeofenceAlert,
    LiveEngine,
    LiveReport,
    MonitorResult,
    WindowResult,
)
from repro.live.monitors import Monitor, MonitorPlan, parse_condition
from repro.live.replay import replay

__all__ = [
    "GeofenceAlert",
    "LiveEngine",
    "LiveReport",
    "Monitor",
    "MonitorPlan",
    "MonitorResult",
    "WindowResult",
    "parse_condition",
    "replay",
]
