"""Positioning Method Controller (PMC).

"The Positioning Method Controller reads objects' raw RSSI data and estimates
the locations according to the chosen positioning method and relevant
configuration.  Note that another sampling frequency can be specified in PMC
for generating the positioning data.  This is different from the one for
generating the trajectory data." (Section 2)

The controller also enforces method/device compatibility ("all three methods
can be applied to Wi-Fi devices, whereas fingerprinting currently does not
apply to RFID and Bluetooth devices", Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.building.model import Building
from repro.core.errors import ConfigurationError, PositioningError
from repro.core.types import (
    PositioningMethod,
    PositioningRecord,
    ProbabilisticPositioningRecord,
    ProximityRecord,
    RSSIRecord,
    method_applies_to,
)
from repro.devices.base import PositioningDevice
from repro.positioning.base import build_windows
from repro.positioning.fingerprinting import (
    KNNFingerprinting,
    NaiveBayesFingerprinting,
    RadioMap,
)
from repro.positioning.proximity import ProximityMethod
from repro.positioning.trilateration import RSSIConversion, TrilaterationMethod

#: The positioning data produced by the controller: deterministic records,
#: probabilistic records, or proximity detection periods.
PositioningOutput = Union[
    List[PositioningRecord],
    List[ProbabilisticPositioningRecord],
    List[ProximityRecord],
]


@dataclass
class PositioningConfig:
    """Configuration consumed by the Positioning Method Controller.

    Attributes:
        method: which of the three positioning methods to run.
        sampling_period: the positioning sampling period (seconds); raw RSSI
            measurements are grouped into windows of this length.
        fingerprinting_algorithm: ``"knn"`` (deterministic) or ``"bayes"``
            (probabilistic).
        knn_k: number of neighbours for the kNN algorithm.
        bayes_top_k: number of candidate locations returned by Naive Bayes.
        min_devices: minimum number of circles for trilateration.
        rssi_threshold: optional explicit proximity threshold (dBm).
        proximity_miss_tolerance: detection operations that may be missed
            before a detection period completes.
    """

    method: PositioningMethod = PositioningMethod.TRILATERATION
    sampling_period: float = 5.0
    fingerprinting_algorithm: str = "knn"
    knn_k: int = 3
    bayes_top_k: int = 5
    min_devices: int = 3
    rssi_threshold: Optional[float] = None
    proximity_miss_tolerance: int = 1

    def __post_init__(self) -> None:
        if self.sampling_period <= 0:
            raise ConfigurationError("positioning sampling_period must be positive")
        if self.fingerprinting_algorithm not in ("knn", "bayes"):
            raise ConfigurationError(
                "fingerprinting_algorithm must be 'knn' or 'bayes'"
            )


class PositioningMethodController:
    """Chooses, configures and runs one of the three positioning methods."""

    def __init__(
        self,
        building: Building,
        devices: Sequence[PositioningDevice],
        config: Optional[PositioningConfig] = None,
        radio_map: Optional[RadioMap] = None,
        rssi_conversion: Optional[RSSIConversion] = None,
        spatial=None,
    ) -> None:
        """*spatial* shares the building-wide cached
        :class:`~repro.spatial.SpatialService` with the constructed method
        (candidate device index, floor extents, point-location cache)."""
        self.building = building
        self.devices = list(devices)
        self.config = config or PositioningConfig()
        self.radio_map = radio_map
        self.rssi_conversion = rssi_conversion
        self.spatial = spatial
        self._validate_compatibility()

    def _validate_compatibility(self) -> None:
        incompatible = [
            device.device_id
            for device in self.devices
            if not method_applies_to(self.config.method, device.device_type)
        ]
        if incompatible:
            raise PositioningError(
                f"method {self.config.method.value} does not apply to devices "
                f"{', '.join(sorted(incompatible))}"
            )

    # ------------------------------------------------------------------ #
    # Method construction
    # ------------------------------------------------------------------ #
    def build_method(self):
        """Instantiate the configured positioning method."""
        method = self.config.method
        if method is PositioningMethod.TRILATERATION:
            return TrilaterationMethod(
                self.building,
                self.devices,
                rssi_conversion=self.rssi_conversion,
                min_devices=self.config.min_devices,
                spatial=self.spatial,
            )
        if method is PositioningMethod.FINGERPRINTING:
            if self.radio_map is None:
                raise PositioningError(
                    "fingerprinting requires a radio map; construct one with "
                    "RadioMap.survey_grid() and pass it to the controller"
                )
            if self.config.fingerprinting_algorithm == "knn":
                return KNNFingerprinting(
                    self.building, self.devices, self.radio_map, k=self.config.knn_k,
                    spatial=self.spatial,
                )
            return NaiveBayesFingerprinting(
                self.building,
                self.devices,
                self.radio_map,
                top_k=self.config.bayes_top_k,
                spatial=self.spatial,
            )
        if method is PositioningMethod.PROXIMITY:
            return ProximityMethod(
                self.building,
                self.devices,
                rssi_threshold=self.config.rssi_threshold,
                miss_tolerance=self.config.proximity_miss_tolerance,
                spatial=self.spatial,
            )
        raise PositioningError(f"unsupported positioning method {method!r}")

    # ------------------------------------------------------------------ #
    # Estimation
    # ------------------------------------------------------------------ #
    def generate(self, rssi_records: Sequence[RSSIRecord]) -> PositioningOutput:
        """Produce positioning data from raw RSSI data."""
        return list(self.iter_generate(rssi_records))

    def iter_generate(self, rssi_records: Sequence[RSSIRecord]):
        """Yield positioning records one observation window at a time.

        Streaming counterpart of :meth:`generate`: estimates are produced as
        each window is processed instead of after the whole dataset, so a
        consumer (e.g. the streaming pipeline's bounded-flush writer) never
        needs the full positioning output in memory.  Proximity detection
        inherently spans the record stream, so it yields its detection
        periods once computed.
        """
        method = self.build_method()
        if isinstance(method, ProximityMethod):
            yield from method.detect(rssi_records)
            return
        for window in build_windows(rssi_records, self.config.sampling_period):
            estimate = method.estimate_window(window)
            if estimate is not None:
                yield estimate


__all__ = ["PositioningConfig", "PositioningMethodController", "PositioningOutput"]
