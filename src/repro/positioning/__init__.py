"""Positioning Layer: trilateration, fingerprinting, proximity and the PMC."""

from repro.positioning.base import ObservationWindow, PositioningMethodBase, build_windows
from repro.positioning.trilateration import (
    RSSIConversion,
    TrilaterationMethod,
    default_rssi_conversion,
)
from repro.positioning.fingerprinting import (
    KNNFingerprinting,
    MISSING_RSSI_DBM,
    NaiveBayesFingerprinting,
    RadioMap,
    ReferenceLocation,
)
from repro.positioning.proximity import ProximityMethod
from repro.positioning.controller import (
    PositioningConfig,
    PositioningMethodController,
    PositioningOutput,
)

__all__ = [
    "ObservationWindow",
    "PositioningMethodBase",
    "build_windows",
    "RSSIConversion",
    "TrilaterationMethod",
    "default_rssi_conversion",
    "KNNFingerprinting",
    "MISSING_RSSI_DBM",
    "NaiveBayesFingerprinting",
    "RadioMap",
    "ReferenceLocation",
    "ProximityMethod",
    "PositioningConfig",
    "PositioningMethodController",
    "PositioningOutput",
]
