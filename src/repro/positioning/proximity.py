"""Proximity positioning.

Section 3.3 (3): "Proximity estimates symbolic relative locations for moving
objects.  Specifically, if an object is detected by a positioning device, it
is considered to be collocated with that device for the detection period.  We
use a thresholding method to determine the detection period for a given pair
of object and device.  If the RSSI measurements for the object cannot be
found over the time of the device's one detection operation, we consider it
has left the device's detection range, and the detection period is thus
complete."

Output records have the format ``(o_id, d_id, ts, te)``.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.building.model import Building
from repro.core.types import ProximityRecord, RSSIRecord
from repro.devices.base import PositioningDevice
from repro.positioning.base import PositioningMethodBase
from repro.rssi.pathloss import default_model_for


class ProximityMethod(PositioningMethodBase):
    """Threshold-based detection periods per (object, device) pair.

    Args:
        rssi_threshold: measurements below this value are ignored.  When
            ``None``, a per-device threshold is derived from the device's
            detection range through its noise-free path loss curve (an object
            right at the edge of the range produces exactly the threshold).
        miss_tolerance: how many detection operations may be missed before the
            detection period is considered complete (1 reproduces the paper's
            "cannot be found over the time of the device's one detection
            operation").
    """

    name = "proximity"

    def __init__(
        self,
        building: Building,
        devices: Sequence[PositioningDevice],
        rssi_threshold: Optional[float] = None,
        miss_tolerance: int = 1,
        spatial=None,
    ) -> None:
        super().__init__(building, devices, spatial=spatial)
        if miss_tolerance < 1:
            raise ValueError("miss_tolerance must be at least 1")
        self.miss_tolerance = miss_tolerance
        self._thresholds: Dict[str, float] = {}
        for device in devices:
            if rssi_threshold is not None:
                self._thresholds[device.device_id] = rssi_threshold
            else:
                model = default_model_for(device)
                self._thresholds[device.device_id] = model.rssi_at(device.detection_range)

    def threshold_for(self, device_id: str) -> float:
        """Detection threshold (dBm) applied to measurements of *device_id*."""
        return self._thresholds[device_id]

    # ------------------------------------------------------------------ #
    # Detection-period extraction
    # ------------------------------------------------------------------ #
    def detect(self, records: Sequence[RSSIRecord]) -> List[ProximityRecord]:
        """Extract every detection period from the raw RSSI data."""
        grouped: Dict[Tuple[str, str], List[RSSIRecord]] = defaultdict(list)
        for record in records:
            if record.device_id not in self.devices:
                continue
            if record.rssi >= self._thresholds[record.device_id]:
                grouped[(record.object_id, record.device_id)].append(record)
        periods: List[ProximityRecord] = []
        for (object_id, device_id), hits in grouped.items():
            hits.sort(key=lambda record: record.t)
            device = self.device(device_id)
            max_gap = device.detection_interval * self.miss_tolerance
            period_start = hits[0].t
            previous_t = hits[0].t
            for record in hits[1:]:
                if record.t - previous_t > max_gap + 1e-9:
                    periods.append(
                        ProximityRecord(
                            object_id=object_id,
                            device_id=device_id,
                            t_start=period_start,
                            t_end=previous_t,
                        )
                    )
                    period_start = record.t
                previous_t = record.t
            periods.append(
                ProximityRecord(
                    object_id=object_id,
                    device_id=device_id,
                    t_start=period_start,
                    t_end=previous_t,
                )
            )
        periods.sort(key=lambda record: (record.t_start, record.object_id, record.device_id))
        return periods

    # PositioningMethodBase interface: proximity does not use windows, but we
    # keep the uniform entry point for the controller.
    def estimate_window(self, window):  # noqa: D102 - documented in detect()
        return None

    def estimate_from_records(self, records: Sequence[RSSIRecord]) -> List[ProximityRecord]:
        """Alias of :meth:`detect` matching the controller's calling convention."""
        return self.detect(records)


__all__ = ["ProximityMethod"]
