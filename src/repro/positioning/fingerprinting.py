"""Fingerprinting positioning.

Section 3.3 (2): "Fingerprinting associates RSSI fingerprints to locations.
A fingerprint in a location is a vector in which each dimension corresponds to
an RSSI value measured by a certain positioning device.  In the offline phase,
a site-survey is required to collect the fingerprints for a set of reference
locations.  The collected data is stored in radio map as training data.  When
constructing a radio map, Vita first allows users to select a set of reference
locations on a given floor.  After that, Vita simulates some objects to
collect the fingerprints at the selected reference locations ...  Once the
radio map is constructed, in the online phase, users can employ various
classification algorithms such as NaiveBayes or kNN to infer locations."

Two online algorithms are provided:

* :class:`KNNFingerprinting` — deterministic; averages the coordinates of the
  *k* nearest reference locations in signal space;
* :class:`NaiveBayesFingerprinting` — probabilistic; assumes per-device
  Gaussian RSSI distributions at each reference location and returns a set of
  candidate locations with probabilities.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.building.model import Building, Partition
from repro.core.errors import RadioMapError
from repro.core.types import (
    DeviceId,
    IndoorLocation,
    PositioningMethod,
    PositioningRecord,
    ProbabilisticPositioningRecord,
)
from repro.devices.base import PositioningDevice
from repro.geometry.point import Point
from repro.positioning.base import ObservationWindow, PositioningMethodBase
from repro.rssi.measurement import RSSIGenerator

#: RSSI assumed for a device that is expected but not heard at a location.
MISSING_RSSI_DBM = -100.0


@dataclass
class ReferenceLocation:
    """One surveyed reference location of the radio map."""

    floor_id: int
    point: Point
    partition_id: Optional[str] = None
    #: Mean RSSI per device observed during the site survey.
    mean_rssi: Dict[DeviceId, float] = field(default_factory=dict)
    #: RSSI standard deviation per device (floored to a minimum by the users).
    std_rssi: Dict[DeviceId, float] = field(default_factory=dict)

    def signal_distance(self, observation: Dict[DeviceId, float]) -> float:
        """Euclidean distance in signal space between this reference and *observation*.

        Devices present in only one of the two vectors contribute with the
        :data:`MISSING_RSSI_DBM` placeholder, penalising mismatched coverage.
        """
        device_ids = set(self.mean_rssi) | set(observation)
        if not device_ids:
            return float("inf")
        total = 0.0
        for device_id in device_ids:
            reference_value = self.mean_rssi.get(device_id, MISSING_RSSI_DBM)
            observed_value = observation.get(device_id, MISSING_RSSI_DBM)
            total += (reference_value - observed_value) ** 2
        return math.sqrt(total / len(device_ids))

    def log_likelihood(self, observation: Dict[DeviceId, float], min_std: float = 2.0) -> float:
        """Naive-Bayes log-likelihood of *observation* at this reference location."""
        if not observation:
            return float("-inf")
        total = 0.0
        for device_id, observed_value in observation.items():
            mean = self.mean_rssi.get(device_id, MISSING_RSSI_DBM)
            std = max(self.std_rssi.get(device_id, min_std), min_std)
            total += -0.5 * ((observed_value - mean) / std) ** 2 - math.log(std)
        return total


class RadioMap:
    """The offline training data of the fingerprinting method."""

    def __init__(self, references: Optional[List[ReferenceLocation]] = None) -> None:
        self.references: List[ReferenceLocation] = references or []

    def __len__(self) -> int:
        return len(self.references)

    def add(self, reference: ReferenceLocation) -> None:
        """Register a surveyed reference location."""
        self.references.append(reference)

    def floors(self) -> List[int]:
        """Floors covered by the radio map."""
        return sorted({reference.floor_id for reference in self.references})

    @classmethod
    def survey(
        cls,
        building: Building,
        generator: RSSIGenerator,
        reference_points: Sequence[Tuple[int, Point]],
        samples_per_location: int = 10,
    ) -> "RadioMap":
        """Simulate the site survey at explicit reference points."""
        radio_map = cls()
        for floor_id, point in reference_points:
            observations = generator.collect_fingerprint(
                floor_id, point, samples=samples_per_location
            )
            partition = building.floor(floor_id).partition_at(point)
            reference = ReferenceLocation(
                floor_id=floor_id,
                point=point,
                partition_id=partition.partition_id if partition else None,
                mean_rssi={
                    device_id: statistics.fmean(values)
                    for device_id, values in observations.items()
                },
                std_rssi={
                    device_id: statistics.pstdev(values) if len(values) > 1 else 0.0
                    for device_id, values in observations.items()
                },
            )
            radio_map.add(reference)
        return radio_map

    @classmethod
    def survey_grid(
        cls,
        building: Building,
        generator: RSSIGenerator,
        floor_ids: Optional[Sequence[int]] = None,
        spacing: float = 4.0,
        samples_per_location: int = 10,
    ) -> "RadioMap":
        """Simulate the site survey on a regular grid of reference locations.

        This is the "select a set of reference locations on a given floor"
        step with a sensible default selection: one reference point every
        *spacing* metres inside every partition.
        """
        reference_points: List[Tuple[int, Point]] = []
        floor_ids = list(floor_ids) if floor_ids is not None else building.floor_ids
        for floor_id in floor_ids:
            floor = building.floor(floor_id)
            for partition in floor.partitions.values():
                reference_points.extend(
                    (floor_id, point) for point in _grid_points(partition, spacing)
                )
        if not reference_points:
            raise RadioMapError("no reference locations could be selected")
        return cls.survey(building, generator, reference_points, samples_per_location)


def _grid_points(partition: Partition, spacing: float) -> List[Point]:
    """Grid points with the given spacing inside a partition (at least its centroid)."""
    box = partition.polygon.bounding_box
    points: List[Point] = []
    y = box.min_y + spacing / 2.0
    while y < box.max_y:
        x = box.min_x + spacing / 2.0
        while x < box.max_x:
            candidate = Point(x, y)
            if partition.contains_point(candidate):
                points.append(candidate)
            x += spacing
        y += spacing
    if not points:
        points.append(partition.centroid)
    return points


class _FingerprintingBase(PositioningMethodBase):
    """Shared constructor for the two online algorithms."""

    def __init__(
        self,
        building: Building,
        devices: Sequence[PositioningDevice],
        radio_map: RadioMap,
        spatial=None,
    ) -> None:
        super().__init__(building, devices, spatial=spatial)
        if not len(radio_map):
            raise RadioMapError("the radio map contains no reference locations")
        self.radio_map = radio_map


class KNNFingerprinting(_FingerprintingBase):
    """Deterministic k-nearest-neighbours in signal space."""

    name = "fingerprinting-knn"

    def __init__(
        self,
        building: Building,
        devices: Sequence[PositioningDevice],
        radio_map: RadioMap,
        k: int = 3,
        spatial=None,
    ) -> None:
        super().__init__(building, devices, radio_map, spatial=spatial)
        if k < 1:
            raise RadioMapError("k must be at least 1")
        self.k = k

    def estimate_window(self, window: ObservationWindow) -> Optional[PositioningRecord]:
        observation = window.mean_rssi_by_device()
        if not observation:
            return None
        scored = sorted(
            (
                (reference.signal_distance(observation), index, reference)
                for index, reference in enumerate(self.radio_map.references)
            ),
            key=lambda triple: (triple[0], triple[1]),
        )
        nearest = [reference for _, _, reference in scored[: self.k]]
        if not nearest:
            return None
        # Average the nearest reference coordinates, restricted to the most
        # common floor among them (coordinates on different floors must not
        # be blended together).
        floor_votes: Dict[int, int] = {}
        for reference in nearest:
            floor_votes[reference.floor_id] = floor_votes.get(reference.floor_id, 0) + 1
        floor_id = max(floor_votes.items(), key=lambda pair: pair[1])[0]
        same_floor = [reference for reference in nearest if reference.floor_id == floor_id]
        x = sum(reference.point.x for reference in same_floor) / len(same_floor)
        y = sum(reference.point.y for reference in same_floor) / len(same_floor)
        location = self.locate_point(floor_id, Point(x, y))
        return PositioningRecord(
            object_id=window.object_id,
            location=location,
            t=window.t_center,
            method=PositioningMethod.FINGERPRINTING,
        )


class NaiveBayesFingerprinting(_FingerprintingBase):
    """Probabilistic Naive-Bayes classification over the reference locations."""

    name = "fingerprinting-bayes"

    def __init__(
        self,
        building: Building,
        devices: Sequence[PositioningDevice],
        radio_map: RadioMap,
        top_k: int = 5,
        min_std: float = 2.0,
        spatial=None,
    ) -> None:
        super().__init__(building, devices, radio_map, spatial=spatial)
        if top_k < 1:
            raise RadioMapError("top_k must be at least 1")
        self.top_k = top_k
        self.min_std = min_std

    def estimate_window(
        self, window: ObservationWindow
    ) -> Optional[ProbabilisticPositioningRecord]:
        observation = window.mean_rssi_by_device()
        if not observation:
            return None
        log_likelihoods = [
            (reference.log_likelihood(observation, self.min_std), index, reference)
            for index, reference in enumerate(self.radio_map.references)
        ]
        log_likelihoods.sort(key=lambda triple: (-triple[0], triple[1]))
        top = log_likelihoods[: self.top_k]
        best_log = top[0][0]
        if not math.isfinite(best_log):
            return None
        weights = [math.exp(value - best_log) for value, _, _ in top]
        total = sum(weights)
        candidates: List[Tuple[IndoorLocation, float]] = []
        for weight, (_, _, reference) in zip(weights, top):
            location = IndoorLocation(
                building_id=self.building.building_id,
                floor_id=reference.floor_id,
                partition_id=reference.partition_id,
                x=reference.point.x,
                y=reference.point.y,
            )
            candidates.append((location, weight / total))
        return ProbabilisticPositioningRecord(
            object_id=window.object_id,
            candidates=tuple(candidates),
            t=window.t_center,
        )


__all__ = [
    "MISSING_RSSI_DBM",
    "ReferenceLocation",
    "RadioMap",
    "KNNFingerprinting",
    "NaiveBayesFingerprinting",
]
