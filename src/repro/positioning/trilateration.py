"""Trilateration positioning.

Section 3.3 (1): "Trilateration infers deterministic locations from the
intersection of at least three circles.  The key is to convert an RSSI
measurement to the distance between a positioning device and an object.  To
this end, we allow users to define their own RSSI conversion functions that
derive the distances from the noisy RSSI measurements.  A default function is
also provided."

The implementation converts each device's mean window RSSI to a distance
(circle radius) and solves the over-determined circle-intersection system by
linearised least squares (each pair of circles yields a linear equation).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.building.model import Building
from repro.core.types import PositioningMethod, PositioningRecord
from repro.devices.base import PositioningDevice
from repro.geometry.point import Point
from repro.positioning.base import ObservationWindow, PositioningMethodBase
from repro.rssi.pathloss import PathLossModel, default_model_for

#: An RSSI conversion function maps (device, rssi_dbm) to a distance in metres.
RSSIConversion = Callable[[PositioningDevice, float], float]


def default_rssi_conversion(device: PositioningDevice, rssi: float) -> float:
    """The default conversion: invert the device's noise-free path loss curve."""
    return default_model_for(device).distance_from_rssi(rssi)


class TrilaterationMethod(PositioningMethodBase):
    """Least-squares trilateration over at least three same-floor devices."""

    name = "trilateration"

    def __init__(
        self,
        building: Building,
        devices: Sequence[PositioningDevice],
        rssi_conversion: Optional[RSSIConversion] = None,
        min_devices: int = 3,
        max_devices: int = 5,
        path_loss: Optional[PathLossModel] = None,
        clamp_to_floor: bool = True,
        spatial=None,
    ) -> None:
        super().__init__(building, devices, spatial=spatial)
        if min_devices < 3:
            raise ValueError("trilateration needs at least three circles")
        if max_devices < min_devices:
            raise ValueError("max_devices must be >= min_devices")
        self.min_devices = min_devices
        self.max_devices = max_devices
        self.clamp_to_floor = clamp_to_floor
        if rssi_conversion is not None:
            self.rssi_conversion = rssi_conversion
        elif path_loss is not None:
            self.rssi_conversion = lambda device, rssi: path_loss.distance_from_rssi(rssi)
        else:
            self.rssi_conversion = default_rssi_conversion

    def estimate_window(self, window: ObservationWindow) -> Optional[PositioningRecord]:
        means = window.mean_rssi_by_device()
        if len(means) < self.min_devices:
            return None
        floor_id = self.dominant_floor(window)
        # Strongest measurements first: nearby devices have the least noisy
        # RSSI-to-distance conversion, so restricting the solve to the top
        # few anchors dramatically improves the estimate.
        ranked = sorted(means.items(), key=lambda pair: pair[1], reverse=True)
        anchors: List[Point] = []
        radii: List[float] = []
        for device_id, rssi in ranked:
            device = self.device(device_id)
            if device.floor_id != floor_id:
                continue
            anchors.append(device.position)
            radii.append(max(self.rssi_conversion(device, rssi), 0.05))
            if len(anchors) >= self.max_devices:
                break
        if len(anchors) < self.min_devices:
            return None
        estimate = self._least_squares(anchors, radii)
        if estimate is None:
            return None
        estimate = self._refine(anchors, radii, estimate)
        if self.clamp_to_floor:
            estimate = self._clamp_to_floor(floor_id, estimate)
        location = self.locate_point(floor_id, estimate)
        return PositioningRecord(
            object_id=window.object_id,
            location=location,
            t=window.t_center,
            method=PositioningMethod.TRILATERATION,
        )

    def _clamp_to_floor(self, floor_id: int, estimate: Point) -> Point:
        """Clamp an estimate into the floor extent (a real system knows it)."""
        # The floor extent is memoized by the spatial service — the original
        # recomputed the union over every partition per estimated window.
        box = self.spatial.floor_bounds(floor_id)
        return Point(
            min(max(estimate.x, box.min_x), box.max_x),
            min(max(estimate.y, box.min_y), box.max_y),
        )

    @staticmethod
    def _refine(anchors: List[Point], radii: List[float], initial: Point,
                iterations: int = 20) -> Point:
        """Gauss–Newton refinement of the circle-intersection residuals.

        Residuals ``|x - anchor_i| - radius_i`` are weighted by ``1/radius_i``
        so that nearby (less noisy) anchors dominate the fit.
        """
        x = np.array([initial.x, initial.y], dtype=float)
        positions = np.array([[a.x, a.y] for a in anchors], dtype=float)
        radii_array = np.array(radii, dtype=float)
        weights = 1.0 / np.maximum(radii_array, 0.5)
        for _ in range(iterations):
            deltas = x - positions
            distances = np.maximum(np.linalg.norm(deltas, axis=1), 1e-6)
            residuals = (distances - radii_array) * weights
            jacobian = (deltas / distances[:, None]) * weights[:, None]
            try:
                step, *_ = np.linalg.lstsq(jacobian, residuals, rcond=None)
            except np.linalg.LinAlgError:
                break
            x = x - step
            if float(np.linalg.norm(step)) < 1e-4:
                break
        if not np.all(np.isfinite(x)):
            return initial
        return Point(float(x[0]), float(x[1]))

    @staticmethod
    def _least_squares(anchors: List[Point], radii: List[float]) -> Optional[Point]:
        """Linearised circle-intersection solve.

        Subtracting the last circle equation from every other yields a linear
        system ``A [x, y]^T = b`` that is solved in the least-squares sense.
        """
        n = len(anchors)
        reference = anchors[-1]
        reference_radius = radii[-1]
        rows = []
        rhs = []
        for index in range(n - 1):
            anchor = anchors[index]
            rows.append([2.0 * (anchor.x - reference.x), 2.0 * (anchor.y - reference.y)])
            rhs.append(
                anchor.x ** 2 - reference.x ** 2
                + anchor.y ** 2 - reference.y ** 2
                + reference_radius ** 2 - radii[index] ** 2
            )
        matrix = np.asarray(rows, dtype=float)
        vector = np.asarray(rhs, dtype=float)
        if np.linalg.matrix_rank(matrix) < 2:
            return None
        solution, *_ = np.linalg.lstsq(matrix, vector, rcond=None)
        x, y = float(solution[0]), float(solution[1])
        if not (np.isfinite(x) and np.isfinite(y)):
            return None
        return Point(x, y)


__all__ = ["RSSIConversion", "default_rssi_conversion", "TrilaterationMethod"]
