"""Shared infrastructure for the indoor positioning methods.

All three methods of Section 3.3 consume the raw RSSI data and produce
positioning data.  The Positioning Method Controller samples the raw RSSI
stream at its own positioning sampling frequency, which is generally lower
than the RSSI sampling frequency: measurements are grouped into *observation
windows* of one positioning period each, and the method estimates one
location per object per window.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.building.model import Building
from repro.core.errors import PositioningError
from repro.core.types import (
    DeviceId,
    IndoorLocation,
    ObjectId,
    RSSIRecord,
    Timestamp,
)
from repro.devices.base import PositioningDevice
from repro.geometry.point import Point
from repro.spatial import SpatialService


@dataclass
class ObservationWindow:
    """All RSSI measurements of one object inside one positioning period."""

    object_id: ObjectId
    t_start: Timestamp
    t_end: Timestamp
    records: List[RSSIRecord] = field(default_factory=list)

    @property
    def t_center(self) -> Timestamp:
        """Representative timestamp of the window (its midpoint)."""
        return (self.t_start + self.t_end) / 2.0

    @property
    def device_ids(self) -> List[DeviceId]:
        """Devices that observed the object in this window."""
        return sorted({record.device_id for record in self.records})

    def mean_rssi_by_device(self) -> Dict[DeviceId, float]:
        """Mean RSSI per device over the window (the method's input vector)."""
        grouped: Dict[DeviceId, List[float]] = defaultdict(list)
        for record in self.records:
            grouped[record.device_id].append(record.rssi)
        return {
            device_id: sum(values) / len(values) for device_id, values in grouped.items()
        }

    def strongest_device(self) -> Optional[Tuple[DeviceId, float]]:
        """The device with the strongest mean RSSI, or ``None`` when empty."""
        means = self.mean_rssi_by_device()
        if not means:
            return None
        device_id = max(means, key=means.get)
        return device_id, means[device_id]


def build_windows(
    records: Sequence[RSSIRecord],
    period: float,
    origin: Optional[float] = None,
) -> List[ObservationWindow]:
    """Group raw RSSI records into per-object windows of *period* seconds."""
    if period <= 0:
        raise PositioningError("positioning sampling period must be positive")
    if not records:
        return []
    start = origin if origin is not None else min(record.t for record in records)
    buckets: Dict[Tuple[ObjectId, int], ObservationWindow] = {}
    for record in records:
        index = int(math.floor((record.t - start) / period + 1e-9))
        key = (record.object_id, index)
        window = buckets.get(key)
        if window is None:
            window = ObservationWindow(
                object_id=record.object_id,
                t_start=start + index * period,
                t_end=start + (index + 1) * period,
            )
            buckets[key] = window
        window.records.append(record)
    windows = list(buckets.values())
    windows.sort(key=lambda w: (w.t_start, w.object_id))
    return windows


class PositioningMethodBase:
    """Base class of the three positioning methods."""

    name = "abstract"

    def __init__(
        self,
        building: Building,
        devices: Sequence[PositioningDevice],
        spatial: Optional[SpatialService] = None,
    ) -> None:
        """*spatial* shares the building-wide cached
        :class:`~repro.spatial.SpatialService` (point-location cache, floor
        extents, device index) with the other layers; a private one is
        created when omitted."""
        self.building = building
        self.spatial = spatial if spatial is not None else SpatialService(building)
        self.devices: Dict[DeviceId, PositioningDevice] = {
            device.device_id: device for device in devices
        }

    # ------------------------------------------------------------------ #
    # Helpers shared by the concrete methods
    # ------------------------------------------------------------------ #
    def device(self, device_id: DeviceId) -> PositioningDevice:
        """The device with id *device_id*."""
        try:
            return self.devices[device_id]
        except KeyError:
            raise PositioningError(f"RSSI record references unknown device {device_id}")

    def locate_point(self, floor_id: int, point: Point) -> IndoorLocation:
        """Annotate a coordinate estimate with its partition (cached)."""
        return self.spatial.locate(floor_id, point)

    def dominant_floor(self, window: ObservationWindow) -> int:
        """The floor where most of the window's observing devices live."""
        counts: Dict[int, int] = defaultdict(int)
        for device_id in window.device_ids:
            counts[self.device(device_id).floor_id] += 1
        if not counts:
            raise PositioningError("observation window contains no measurements")
        return max(counts.items(), key=lambda pair: (pair[1], -pair[0]))[0]

    def estimate_window(self, window: ObservationWindow):
        """Produce one positioning record from one observation window.

        Concrete methods return a :class:`PositioningRecord`,
        :class:`ProbabilisticPositioningRecord` or ``None`` when no estimate
        can be made from the window.
        """
        raise NotImplementedError

    def estimate(self, windows: Iterable[ObservationWindow]) -> List:
        """Estimate every window, skipping the ones without enough data."""
        results = []
        for window in windows:
            estimate = self.estimate_window(window)
            if estimate is not None:
                results.append(estimate)
        return results


__all__ = ["ObservationWindow", "build_windows", "PositioningMethodBase"]
