"""Geometric substrate: points, segments, polygons, decomposition, indexes."""

from repro.geometry.point import Point, centroid_of, polyline_length
from repro.geometry.segment import Segment
from repro.geometry.polygon import BoundingBox, Polygon
from repro.geometry.decompose import DecompositionConfig, decompose, is_balanced
from repro.geometry.spatial_index import GridIndex, RTreeIndex, SpatialIndex, build_index
from repro.geometry.line_of_sight import (
    SightlineReport,
    analyze_sightline,
    count_obstacle_crossings,
    count_wall_crossings,
    has_line_of_sight,
    visible_targets,
)

__all__ = [
    "Point",
    "centroid_of",
    "polyline_length",
    "Segment",
    "BoundingBox",
    "Polygon",
    "DecompositionConfig",
    "decompose",
    "is_balanced",
    "GridIndex",
    "RTreeIndex",
    "SpatialIndex",
    "build_index",
    "SightlineReport",
    "analyze_sightline",
    "count_obstacle_crossings",
    "count_wall_crossings",
    "has_line_of_sight",
    "visible_targets",
]
