"""Spatial indexes used to answer point-location and range queries.

The paper stores indoor entities in PostGIS "indexed by featured spatial
indices".  This module provides two in-memory equivalents with the same query
interface:

* :class:`GridIndex` — a uniform grid (fast to build, good for evenly sized
  partitions such as decomposed rooms);
* :class:`RTreeIndex` — a static Sort-Tile-Recursive (STR) packed R-tree
  (better for skewed extents, e.g. long hallways mixed with small offices).

Both index arbitrary objects with an associated :class:`BoundingBox` and
support bounding-box range queries, point queries and nearest-neighbour
queries.  The ablation bench ``benchmarks/test_bench_storage_queries.py``
compares them.
"""

from __future__ import annotations

import math
from typing import Callable, Generic, Iterable, List, Optional, Sequence, Tuple, TypeVar

from repro.core.errors import GeometryError
from repro.geometry.point import Point
from repro.geometry.polygon import BoundingBox

T = TypeVar("T")


class SpatialIndex(Generic[T]):
    """Interface shared by all spatial indexes."""

    def query_box(self, box: BoundingBox) -> List[T]:
        """Return all items whose bounding box intersects *box*."""
        raise NotImplementedError

    def query_point(self, point: Point) -> List[T]:
        """Return all items whose bounding box contains *point*."""
        raise NotImplementedError

    def nearest(
        self,
        point: Point,
        k: int = 1,
        distance_of: Optional[Callable[[T, Point], float]] = None,
    ) -> List[T]:
        """Return the *k* items closest to *point*.

        Without *distance_of*, proximity is measured to the items' bounding
        boxes.  With it, each candidate's true distance is computed with the
        callable while bounding boxes still prune the search (the box
        distance is a lower bound of any sensible item distance), making the
        result exact for non-point geometry such as wall segments.
        """
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


def _box_distance(box: BoundingBox, point: Point) -> float:
    """Distance from *point* to the closest point of *box* (0 if inside)."""
    dx = max(box.min_x - point.x, 0.0, point.x - box.max_x)
    dy = max(box.min_y - point.y, 0.0, point.y - box.max_y)
    return math.hypot(dx, dy)


class GridIndex(SpatialIndex[T]):
    """A uniform grid over the indexed items' combined extent."""

    def __init__(
        self,
        items: Iterable[T],
        bbox_of: Callable[[T], BoundingBox],
        cell_size: Optional[float] = None,
    ) -> None:
        self._items: List[T] = list(items)
        self._bbox_of = bbox_of
        if not self._items:
            self._extent = BoundingBox(0.0, 0.0, 1.0, 1.0)
            self._cell_size = cell_size or 1.0
            self._cells: dict = {}
            self._cols = self._rows = 1
            return
        boxes = [bbox_of(item) for item in self._items]
        extent = boxes[0]
        for box in boxes[1:]:
            extent = extent.union(box)
        self._extent = extent.expanded(1e-6)
        if cell_size is None:
            # Aim for roughly one item per cell on average.
            span = max(self._extent.width, self._extent.height)
            cell_size = max(span / max(1, int(math.sqrt(len(self._items)))), 1e-3)
        self._cell_size = cell_size
        self._cols = max(1, int(math.ceil(self._extent.width / cell_size)))
        self._rows = max(1, int(math.ceil(self._extent.height / cell_size)))
        self._cells = {}
        for item, box in zip(self._items, boxes):
            for key in self._cells_for_box(box):
                self._cells.setdefault(key, []).append((item, box))

    def _cell_of(self, x: float, y: float) -> Tuple[int, int]:
        col = int((x - self._extent.min_x) / self._cell_size)
        row = int((y - self._extent.min_y) / self._cell_size)
        col = min(max(col, 0), self._cols - 1)
        row = min(max(row, 0), self._rows - 1)
        return col, row

    def _cells_for_box(self, box: BoundingBox) -> Iterable[Tuple[int, int]]:
        min_col, min_row = self._cell_of(box.min_x, box.min_y)
        max_col, max_row = self._cell_of(box.max_x, box.max_y)
        for col in range(min_col, max_col + 1):
            for row in range(min_row, max_row + 1):
                yield (col, row)

    def query_box(self, box: BoundingBox) -> List[T]:
        seen: List[T] = []
        seen_ids = set()
        for key in self._cells_for_box(box):
            for item, item_box in self._cells.get(key, ()):
                if id(item) in seen_ids:
                    continue
                if item_box.intersects(box):
                    seen.append(item)
                    seen_ids.add(id(item))
        return seen

    def query_point(self, point: Point) -> List[T]:
        key = self._cell_of(point.x, point.y)
        results: List[T] = []
        for item, item_box in self._cells.get(key, ()):
            if item_box.contains_point(point):
                results.append(item)
        return results

    def nearest(
        self,
        point: Point,
        k: int = 1,
        distance_of: Optional[Callable[[T, Point], float]] = None,
    ) -> List[T]:
        if k <= 0:
            return []
        if distance_of is None:
            def distance_of(item, query):
                return _box_distance(self._bbox_of(item), query)
        scored = sorted(
            ((distance_of(item, point), index, item)
             for index, item in enumerate(self._items)),
            key=lambda triple: (triple[0], triple[1]),
        )
        return [item for _, _, item in scored[:k]]

    def __len__(self) -> int:
        return len(self._items)


class _RTreeNode(Generic[T]):
    __slots__ = ("box", "children", "entries")

    def __init__(self, box: BoundingBox, children=None, entries=None) -> None:
        self.box = box
        self.children: List["_RTreeNode[T]"] = children or []
        self.entries: List[Tuple[BoundingBox, T]] = entries or []

    @property
    def is_leaf(self) -> bool:
        return not self.children


class RTreeIndex(SpatialIndex[T]):
    """A static packed R-tree built with Sort-Tile-Recursive bulk loading."""

    def __init__(
        self,
        items: Iterable[T],
        bbox_of: Callable[[T], BoundingBox],
        node_capacity: int = 8,
    ) -> None:
        if node_capacity < 2:
            raise GeometryError("node_capacity must be at least 2")
        self._items = list(items)
        self._bbox_of = bbox_of
        self._capacity = node_capacity
        entries = [(bbox_of(item), item) for item in self._items]
        self._root = self._build(entries) if entries else None

    # ------------------------------------------------------------------ #
    # Construction (STR bulk loading)
    # ------------------------------------------------------------------ #
    def _build(self, entries: Sequence[Tuple[BoundingBox, T]]) -> _RTreeNode[T]:
        leaves = self._pack_leaves(entries)
        nodes = leaves
        while len(nodes) > 1:
            nodes = self._pack_nodes(nodes)
        return nodes[0]

    def _pack_leaves(self, entries: Sequence[Tuple[BoundingBox, T]]) -> List[_RTreeNode[T]]:
        groups = self._str_partition(entries, key=lambda e: e[0])
        leaves = []
        for group in groups:
            box = group[0][0]
            for entry_box, _ in group[1:]:
                box = box.union(entry_box)
            leaves.append(_RTreeNode(box, entries=list(group)))
        return leaves

    def _pack_nodes(self, nodes: Sequence[_RTreeNode[T]]) -> List[_RTreeNode[T]]:
        groups = self._str_partition(nodes, key=lambda n: n.box)
        parents = []
        for group in groups:
            box = group[0].box
            for node in group[1:]:
                box = box.union(node.box)
            parents.append(_RTreeNode(box, children=list(group)))
        return parents

    def _str_partition(self, items: Sequence, key) -> List[List]:
        """Sort-Tile-Recursive grouping into slices of ``node_capacity``."""
        count = len(items)
        capacity = self._capacity
        leaf_count = math.ceil(count / capacity)
        slice_count = max(1, math.ceil(math.sqrt(leaf_count)))
        per_slice = math.ceil(count / slice_count)
        by_x = sorted(items, key=lambda item: key(item).center.x)
        groups: List[List] = []
        for i in range(0, count, per_slice):
            vertical = sorted(by_x[i:i + per_slice], key=lambda item: key(item).center.y)
            for j in range(0, len(vertical), capacity):
                groups.append(vertical[j:j + capacity])
        return groups

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def query_box(self, box: BoundingBox) -> List[T]:
        results: List[T] = []
        if self._root is None:
            return results
        stack = [self._root]
        while stack:
            node = stack.pop()
            if not node.box.intersects(box):
                continue
            if node.is_leaf:
                for entry_box, item in node.entries:
                    if entry_box.intersects(box):
                        results.append(item)
            else:
                stack.extend(node.children)
        return results

    def query_point(self, point: Point) -> List[T]:
        results: List[T] = []
        if self._root is None:
            return results
        stack = [self._root]
        while stack:
            node = stack.pop()
            if not node.box.contains_point(point):
                continue
            if node.is_leaf:
                for entry_box, item in node.entries:
                    if entry_box.contains_point(point):
                        results.append(item)
            else:
                stack.extend(node.children)
        return results

    def nearest(
        self,
        point: Point,
        k: int = 1,
        distance_of: Optional[Callable[[T, Point], float]] = None,
    ) -> List[T]:
        if k <= 0 or self._root is None:
            return []
        # Best-first search over nodes ordered by box distance.  Entry
        # distances use *distance_of* when given; node boxes remain valid
        # lower bounds, so the search stays exact while still pruning.
        import heapq

        heap: List[Tuple[float, int, object, bool]] = []
        counter = 0
        heapq.heappush(heap, (_box_distance(self._root.box, point), counter, self._root, False))
        results: List[T] = []
        while heap and len(results) < k:
            distance, _, payload, is_entry = heapq.heappop(heap)
            if is_entry:
                results.append(payload)  # type: ignore[arg-type]
                continue
            node = payload
            if node.is_leaf:  # type: ignore[union-attr]
                for entry_box, item in node.entries:  # type: ignore[union-attr]
                    counter += 1
                    entry_distance = (
                        distance_of(item, point)
                        if distance_of is not None
                        else _box_distance(entry_box, point)
                    )
                    heapq.heappush(heap, (entry_distance, counter, item, True))
            else:
                for child in node.children:  # type: ignore[union-attr]
                    counter += 1
                    heapq.heappush(heap, (_box_distance(child.box, point), counter, child, False))
        return results

    def __len__(self) -> int:
        return len(self._items)


def build_index(
    items: Iterable[T],
    bbox_of: Callable[[T], BoundingBox],
    kind: str = "rtree",
) -> SpatialIndex[T]:
    """Factory: build a spatial index of the requested *kind* ("grid" or "rtree")."""
    kind = kind.lower()
    if kind == "grid":
        return GridIndex(items, bbox_of)
    if kind == "rtree":
        return RTreeIndex(items, bbox_of)
    raise GeometryError(f"unknown spatial index kind: {kind!r}")


__all__ = ["SpatialIndex", "GridIndex", "RTreeIndex", "build_index"]
