"""Balanced decomposition of irregular partitions.

Section 4.1 of the paper: "Rooms or hallways with irregular shapes are
decomposed into balanced, smaller partitions according to their sizes and
shapes, and the resultant partitions are indexed by a spatial index in order
to support the indoor distance computations."

The decomposition used here splits a polygon recursively with axis-aligned
cuts (always perpendicular to the longer bounding-box side, through the
middle) until every piece satisfies both a maximum-area and a maximum
aspect-ratio threshold.  The cuts are performed by clipping against
half-plane boxes, so the union of the produced pieces covers the original
polygon and their total area equals the original area (up to floating point
error) — a property the test suite checks with hypothesis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.geometry.polygon import BoundingBox, Polygon


@dataclass(frozen=True)
class DecompositionConfig:
    """Thresholds controlling when a partition is considered "balanced".

    Attributes:
        max_area: pieces larger than this (square metres) are split further.
        max_aspect_ratio: pieces more elongated than this are split further.
        max_depth: hard recursion bound guaranteeing termination.
    """

    max_area: float = 120.0
    max_aspect_ratio: float = 3.0
    max_depth: int = 12

    def __post_init__(self) -> None:
        if self.max_area <= 0:
            raise ValueError("max_area must be positive")
        if self.max_aspect_ratio < 1.0:
            raise ValueError("max_aspect_ratio must be >= 1")
        if self.max_depth < 0:
            raise ValueError("max_depth must be non-negative")


def is_balanced(polygon: Polygon, config: DecompositionConfig) -> bool:
    """Whether *polygon* already satisfies the decomposition thresholds."""
    return (
        polygon.area <= config.max_area
        and polygon.aspect_ratio <= config.max_aspect_ratio
    )


def decompose(polygon: Polygon, config: DecompositionConfig | None = None) -> List[Polygon]:
    """Decompose *polygon* into balanced sub-polygons.

    Returns the input polygon unchanged (as a single-element list) when it is
    already balanced.
    """
    config = config or DecompositionConfig()
    return _decompose(polygon, config, depth=0)


def _decompose(polygon: Polygon, config: DecompositionConfig, depth: int) -> List[Polygon]:
    if depth >= config.max_depth or is_balanced(polygon, config):
        return [polygon]
    left, right = _split(polygon)
    if left is None or right is None:
        # The split failed (e.g. extremely thin sliver); keep the piece as is.
        return [polygon]
    return _decompose(left, config, depth + 1) + _decompose(right, config, depth + 1)


def _split(polygon: Polygon):
    """Split *polygon* in two with an axis-aligned cut through the bbox middle.

    The cut is perpendicular to the longer bounding-box dimension so that the
    resulting pieces become progressively squarer.
    """
    box = polygon.bounding_box
    margin = 1e-6
    if box.width >= box.height:
        cut = (box.min_x + box.max_x) / 2.0
        left_box = BoundingBox(box.min_x - margin, box.min_y - margin, cut, box.max_y + margin)
        right_box = BoundingBox(cut, box.min_y - margin, box.max_x + margin, box.max_y + margin)
    else:
        cut = (box.min_y + box.max_y) / 2.0
        left_box = BoundingBox(box.min_x - margin, box.min_y - margin, box.max_x + margin, cut)
        right_box = BoundingBox(box.min_x - margin, cut, box.max_x + margin, box.max_y + margin)
    return polygon.clip_to_box(left_box), polygon.clip_to_box(right_box)


def total_area(polygons: List[Polygon]) -> float:
    """Sum of the areas of *polygons* (convenience for invariant checks)."""
    return sum(p.area for p in polygons)


__all__ = ["DecompositionConfig", "decompose", "is_balanced", "total_area"]
