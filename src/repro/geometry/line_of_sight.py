"""Line-of-sight analysis between two indoor points.

The path loss model of Section 3.2 adds an obstacle-noise term ``Nob`` for
"influence of obstacles like walls and doors".  The example of Figure 3(a)
makes the behaviour concrete: object *p* is at equal transmission distance
from devices *d1* and *d2*, yet *d2* measures a stronger RSSI because walls
block the line of sight between *p* and *d1*.

This module computes, for a sight line between two points on the same floor,
how many wall segments and obstacle polygons it crosses.  The RSSI noise model
(:mod:`repro.rssi.noise`) converts those counts into attenuation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.segment import Segment


@dataclass(frozen=True)
class SightlineReport:
    """Result of a line-of-sight computation.

    Attributes:
        distance: Euclidean length of the sight line in metres.
        wall_crossings: number of wall segments strictly crossed.
        obstacle_crossings: number of obstacle polygons the line passes through.
        clear: ``True`` when nothing blocks the line of sight.
    """

    distance: float
    wall_crossings: int
    obstacle_crossings: int

    @property
    def clear(self) -> bool:
        return self.wall_crossings == 0 and self.obstacle_crossings == 0

    @property
    def total_crossings(self) -> int:
        return self.wall_crossings + self.obstacle_crossings


def count_wall_crossings(sightline: Segment, walls: Iterable[Segment]) -> int:
    """Number of wall segments whose interiors are crossed by *sightline*."""
    return sum(1 for wall in walls if sightline.crosses(wall))


def count_obstacle_crossings(sightline: Segment, obstacles: Iterable[Polygon]) -> int:
    """Number of obstacle polygons that the sight line passes through.

    An obstacle counts when the line crosses its boundary or either endpoint
    sits inside it.
    """
    count = 0
    for obstacle in obstacles:
        if obstacle.contains_point(sightline.start) or obstacle.contains_point(sightline.end):
            count += 1
            continue
        if any(sightline.crosses(edge) for edge in obstacle.edges()):
            count += 1
    return count


def analyze_sightline(
    origin: Point,
    target: Point,
    walls: Sequence[Segment] = (),
    obstacles: Sequence[Polygon] = (),
) -> SightlineReport:
    """Compute the full line-of-sight report between *origin* and *target*."""
    sightline = Segment(origin, target)
    return SightlineReport(
        distance=sightline.length,
        wall_crossings=count_wall_crossings(sightline, walls),
        obstacle_crossings=count_obstacle_crossings(sightline, obstacles),
    )


def has_line_of_sight(
    origin: Point,
    target: Point,
    walls: Sequence[Segment] = (),
    obstacles: Sequence[Polygon] = (),
) -> bool:
    """Whether nothing blocks the straight line between the two points."""
    return analyze_sightline(origin, target, walls, obstacles).clear


def visible_targets(
    origin: Point,
    targets: Sequence[Point],
    walls: Sequence[Segment] = (),
    obstacles: Sequence[Polygon] = (),
) -> List[int]:
    """Indices of *targets* that are in clear line of sight from *origin*."""
    return [
        index
        for index, target in enumerate(targets)
        if has_line_of_sight(origin, target, walls, obstacles)
    ]


__all__ = [
    "SightlineReport",
    "analyze_sightline",
    "count_wall_crossings",
    "count_obstacle_crossings",
    "has_line_of_sight",
    "visible_targets",
]
