"""2D points and basic vector arithmetic.

All indoor geometry in Vita is per-floor and two-dimensional; floors are tied
together by staircases at the topology level, not at the geometry level.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Tuple


@dataclass(frozen=True)
class Point:
    """An immutable 2D point / vector."""

    x: float
    y: float

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    def __add__(self, other: "Point") -> "Point":
        return Point(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Point") -> "Point":
        return Point(self.x - other.x, self.y - other.y)

    def __mul__(self, scalar: float) -> "Point":
        return Point(self.x * scalar, self.y * scalar)

    __rmul__ = __mul__

    def __truediv__(self, scalar: float) -> "Point":
        return Point(self.x / scalar, self.y / scalar)

    def dot(self, other: "Point") -> float:
        """Dot product with *other*."""
        return self.x * other.x + self.y * other.y

    def cross(self, other: "Point") -> float:
        """Z-component of the 2D cross product with *other*."""
        return self.x * other.y - self.y * other.x

    def norm(self) -> float:
        """Euclidean length of the vector."""
        return math.hypot(self.x, self.y)

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to *other*."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def normalized(self) -> "Point":
        """Return a unit-length copy (the zero vector is returned unchanged)."""
        length = self.norm()
        if length == 0.0:
            return self
        return Point(self.x / length, self.y / length)

    def rotated(self, angle_rad: float, around: "Point" = None) -> "Point":
        """Return this point rotated by *angle_rad* radians around *around*."""
        origin = around if around is not None else Point(0.0, 0.0)
        dx, dy = self.x - origin.x, self.y - origin.y
        cos_a, sin_a = math.cos(angle_rad), math.sin(angle_rad)
        return Point(
            origin.x + dx * cos_a - dy * sin_a,
            origin.y + dx * sin_a + dy * cos_a,
        )

    def midpoint(self, other: "Point") -> "Point":
        """Midpoint between this point and *other*."""
        return Point((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)

    def lerp(self, other: "Point", fraction: float) -> "Point":
        """Linear interpolation towards *other*; ``fraction`` in ``[0, 1]``."""
        return Point(
            self.x + (other.x - self.x) * fraction,
            self.y + (other.y - self.y) * fraction,
        )

    def as_tuple(self) -> Tuple[float, float]:
        """Return the point as a plain ``(x, y)`` tuple."""
        return (self.x, self.y)

    def is_close(self, other: "Point", tolerance: float = 1e-9) -> bool:
        """Whether this point is within *tolerance* of *other*."""
        return self.distance_to(other) <= tolerance


def centroid_of(points: Iterable[Point]) -> Point:
    """Arithmetic centroid of an iterable of points.

    Raises:
        ValueError: if *points* is empty.
    """
    points = list(points)
    if not points:
        raise ValueError("cannot compute the centroid of an empty point set")
    sx = sum(p.x for p in points)
    sy = sum(p.y for p in points)
    return Point(sx / len(points), sy / len(points))


def polyline_length(points: Iterable[Point]) -> float:
    """Total length of the polyline visiting *points* in order."""
    points = list(points)
    total = 0.0
    for previous, current in zip(points, points[1:]):
        total += previous.distance_to(current)
    return total


__all__ = ["Point", "centroid_of", "polyline_length"]
