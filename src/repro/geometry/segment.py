"""Line segments: intersection, distance and projection utilities.

Segments are used to represent walls (for line-of-sight / obstacle-noise
computation in the path loss model) and transient sight lines between a
positioning device and an observed object.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.geometry.point import Point

_EPS = 1e-9


@dataclass(frozen=True)
class Segment:
    """An immutable 2D line segment between ``start`` and ``end``."""

    start: Point
    end: Point

    @property
    def length(self) -> float:
        """Euclidean length of the segment."""
        return self.start.distance_to(self.end)

    @property
    def midpoint(self) -> Point:
        """Midpoint of the segment."""
        return self.start.midpoint(self.end)

    def direction(self) -> Point:
        """Unit direction vector from ``start`` to ``end``."""
        return (self.end - self.start).normalized()

    def point_at(self, fraction: float) -> Point:
        """Point located at *fraction* of the way from ``start`` to ``end``."""
        return self.start.lerp(self.end, fraction)

    def contains_point(self, point: Point, tolerance: float = 1e-7) -> bool:
        """Whether *point* lies on the segment (within *tolerance*)."""
        return self.distance_to_point(point) <= tolerance

    def distance_to_point(self, point: Point) -> float:
        """Shortest distance from *point* to the segment."""
        return point.distance_to(self.closest_point_to(point))

    def closest_point_to(self, point: Point) -> Point:
        """The point on the segment closest to *point*."""
        direction = self.end - self.start
        length_sq = direction.dot(direction)
        if length_sq <= _EPS:
            return self.start
        t = (point - self.start).dot(direction) / length_sq
        t = max(0.0, min(1.0, t))
        return self.start + direction * t

    def intersects(self, other: "Segment") -> bool:
        """Whether this segment and *other* intersect (including touching)."""
        return self.intersection(other) is not None or self._collinear_overlap(other)

    def intersection(self, other: "Segment") -> Optional[Point]:
        """Return the proper intersection point with *other*, or ``None``.

        Collinear overlapping segments return ``None`` (use
        :meth:`intersects` to detect them).
        """
        p, r = self.start, self.end - self.start
        q, s = other.start, other.end - other.start
        denominator = r.cross(s)
        if abs(denominator) <= _EPS:
            return None
        t = (q - p).cross(s) / denominator
        u = (q - p).cross(r) / denominator
        if -_EPS <= t <= 1.0 + _EPS and -_EPS <= u <= 1.0 + _EPS:
            return p + r * t
        return None

    def crosses(self, other: "Segment") -> bool:
        """Strict crossing test: the interiors of the two segments intersect.

        Unlike :meth:`intersects`, merely touching at an endpoint does not
        count.  This is the test used when counting how many walls a radio
        signal passes through: a sight line that grazes a wall corner is not
        considered blocked.
        """
        p, r = self.start, self.end - self.start
        q, s = other.start, other.end - other.start
        denominator = r.cross(s)
        if abs(denominator) <= _EPS:
            return False
        t = (q - p).cross(s) / denominator
        u = (q - p).cross(r) / denominator
        margin = 1e-7
        return margin < t < 1.0 - margin and margin < u < 1.0 - margin

    def _collinear_overlap(self, other: "Segment") -> bool:
        """Whether the two segments are collinear and overlap."""
        r = self.end - self.start
        s = other.end - other.start
        if abs(r.cross(s)) > _EPS:
            return False
        if abs((other.start - self.start).cross(r)) > _EPS:
            return False
        r_len_sq = r.dot(r)
        if r_len_sq <= _EPS:
            return self.contains_point(other.start) or other.contains_point(self.start)
        t0 = (other.start - self.start).dot(r) / r_len_sq
        t1 = (other.end - self.start).dot(r) / r_len_sq
        lo, hi = min(t0, t1), max(t0, t1)
        return hi >= -_EPS and lo <= 1.0 + _EPS

    def angle(self) -> float:
        """Angle of the segment direction in radians, in ``(-pi, pi]``."""
        d = self.end - self.start
        return math.atan2(d.y, d.x)

    def reversed(self) -> "Segment":
        """Return the segment with swapped endpoints."""
        return Segment(self.end, self.start)


__all__ = ["Segment"]
