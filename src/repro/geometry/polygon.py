"""Simple polygons: area, containment, sampling and clipping.

Partitions, obstacles and device coverage footprints are all modelled as
simple (non-self-intersecting) polygons in a floor-local coordinate frame.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.errors import GeometryError
from repro.geometry.point import Point
from repro.geometry.segment import Segment

_EPS = 1e-9


@dataclass(frozen=True)
class BoundingBox:
    """Axis-aligned bounding box."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    def contains_point(self, point: Point) -> bool:
        """Whether *point* is inside (or on the edge of) the box."""
        return (
            self.min_x - _EPS <= point.x <= self.max_x + _EPS
            and self.min_y - _EPS <= point.y <= self.max_y + _EPS
        )

    def intersects(self, other: "BoundingBox") -> bool:
        """Whether this box and *other* overlap (touching counts)."""
        return not (
            self.max_x < other.min_x
            or other.max_x < self.min_x
            or self.max_y < other.min_y
            or other.max_y < self.min_y
        )

    def expanded(self, margin: float) -> "BoundingBox":
        """Return a copy grown by *margin* on every side."""
        return BoundingBox(
            self.min_x - margin,
            self.min_y - margin,
            self.max_x + margin,
            self.max_y + margin,
        )

    def union(self, other: "BoundingBox") -> "BoundingBox":
        """Smallest box containing both this box and *other*."""
        return BoundingBox(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
        )

    @classmethod
    def of_points(cls, points: Iterable[Point]) -> "BoundingBox":
        points = list(points)
        if not points:
            raise GeometryError("cannot build a bounding box from no points")
        return cls(
            min(p.x for p in points),
            min(p.y for p in points),
            max(p.x for p in points),
            max(p.y for p in points),
        )


class Polygon:
    """A simple polygon defined by its vertices in order.

    The constructor rejects polygons with fewer than three vertices or with
    (near-)zero area.  Vertex order may be clockwise or counter-clockwise;
    :attr:`area` is always positive.
    """

    __slots__ = ("_vertices", "_bbox", "_area")

    def __init__(self, vertices: Sequence[Point]) -> None:
        vertices = [
            v if isinstance(v, Point) else Point(float(v[0]), float(v[1]))
            for v in vertices
        ]
        if len(vertices) < 3:
            raise GeometryError("a polygon needs at least three vertices")
        signed = _signed_area(vertices)
        if abs(signed) <= _EPS:
            raise GeometryError("degenerate polygon with zero area")
        self._vertices: Tuple[Point, ...] = tuple(vertices)
        self._bbox = BoundingBox.of_points(vertices)
        self._area = abs(signed)

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def vertices(self) -> Tuple[Point, ...]:
        """The polygon vertices, in their original order."""
        return self._vertices

    @property
    def area(self) -> float:
        """Positive area of the polygon."""
        return self._area

    @property
    def bounding_box(self) -> BoundingBox:
        """Axis-aligned bounding box of the polygon."""
        return self._bbox

    @property
    def perimeter(self) -> float:
        """Total edge length."""
        return sum(edge.length for edge in self.edges())

    @property
    def centroid(self) -> Point:
        """Area centroid of the polygon."""
        cx = cy = 0.0
        signed = _signed_area(self._vertices)
        vertices = self._vertices
        n = len(vertices)
        for i in range(n):
            p0 = vertices[i]
            p1 = vertices[(i + 1) % n]
            cross = p0.cross(p1)
            cx += (p0.x + p1.x) * cross
            cy += (p0.y + p1.y) * cross
        factor = 1.0 / (6.0 * signed)
        return Point(cx * factor, cy * factor)

    @property
    def aspect_ratio(self) -> float:
        """Ratio of the longer to the shorter side of the bounding box (>= 1)."""
        width, height = self._bbox.width, self._bbox.height
        if min(width, height) <= _EPS:
            return float("inf")
        return max(width, height) / min(width, height)

    def edges(self) -> List[Segment]:
        """The polygon boundary as a list of segments."""
        vertices = self._vertices
        n = len(vertices)
        return [Segment(vertices[i], vertices[(i + 1) % n]) for i in range(n)]

    # ------------------------------------------------------------------ #
    # Predicates
    # ------------------------------------------------------------------ #
    def contains_point(self, point: Point, include_boundary: bool = True) -> bool:
        """Ray-casting point-in-polygon test."""
        if not self._bbox.contains_point(point):
            return False
        if self.on_boundary(point):
            return include_boundary
        inside = False
        vertices = self._vertices
        n = len(vertices)
        j = n - 1
        for i in range(n):
            pi, pj = vertices[i], vertices[j]
            intersects = (pi.y > point.y) != (pj.y > point.y)
            if intersects:
                x_at = (pj.x - pi.x) * (point.y - pi.y) / (pj.y - pi.y) + pi.x
                if point.x < x_at:
                    inside = not inside
            j = i
        return inside

    def on_boundary(self, point: Point, tolerance: float = 1e-7) -> bool:
        """Whether *point* lies on the polygon boundary."""
        return any(edge.contains_point(point, tolerance) for edge in self.edges())

    def intersects_segment(self, segment: Segment) -> bool:
        """Whether *segment* crosses or touches the polygon boundary or interior."""
        if self.contains_point(segment.start) or self.contains_point(segment.end):
            return True
        return any(edge.intersects(segment) for edge in self.edges())

    def overlaps(self, other: "Polygon") -> bool:
        """Whether the two polygons share interior area or touch."""
        if not self._bbox.intersects(other._bbox):
            return False
        if any(self.contains_point(v) for v in other.vertices):
            return True
        if any(other.contains_point(v) for v in self.vertices):
            return True
        return any(
            e1.intersects(e2) for e1 in self.edges() for e2 in other.edges()
        )

    # ------------------------------------------------------------------ #
    # Sampling and transforms
    # ------------------------------------------------------------------ #
    def random_point(self, rng: Optional[random.Random] = None, max_tries: int = 1000) -> Point:
        """Sample a point uniformly at random from the polygon interior.

        Rejection sampling against the bounding box; the number of attempts is
        bounded by *max_tries* to guarantee termination even for pathological
        slivers, falling back to the centroid.
        """
        rng = rng or random
        box = self._bbox
        for _ in range(max_tries):
            candidate = Point(
                rng.uniform(box.min_x, box.max_x),
                rng.uniform(box.min_y, box.max_y),
            )
            if self.contains_point(candidate):
                return candidate
        return self.centroid

    def closest_interior_point(self, point: Point) -> Point:
        """Return *point* if it is inside; otherwise the closest boundary point."""
        if self.contains_point(point):
            return point
        best = None
        best_distance = float("inf")
        for edge in self.edges():
            candidate = edge.closest_point_to(point)
            distance = candidate.distance_to(point)
            if distance < best_distance:
                best, best_distance = candidate, distance
        return best

    def translated(self, dx: float, dy: float) -> "Polygon":
        """Return a translated copy."""
        return Polygon([Point(v.x + dx, v.y + dy) for v in self._vertices])

    def scaled(self, factor: float, around: Optional[Point] = None) -> "Polygon":
        """Return a copy scaled by *factor* around *around* (default: centroid)."""
        origin = around if around is not None else self.centroid
        return Polygon(
            [
                Point(
                    origin.x + (v.x - origin.x) * factor,
                    origin.y + (v.y - origin.y) * factor,
                )
                for v in self._vertices
            ]
        )

    # ------------------------------------------------------------------ #
    # Clipping
    # ------------------------------------------------------------------ #
    def clip_to_box(self, box: BoundingBox) -> Optional["Polygon"]:
        """Clip this polygon to an axis-aligned box (Sutherland–Hodgman).

        Returns ``None`` when the intersection is empty or degenerate.
        """
        def clip(points: List[Point], inside, intersect) -> List[Point]:
            result: List[Point] = []
            n = len(points)
            for i in range(n):
                current, previous = points[i], points[i - 1]
                current_in, previous_in = inside(current), inside(previous)
                if current_in:
                    if not previous_in:
                        result.append(intersect(previous, current))
                    result.append(current)
                elif previous_in:
                    result.append(intersect(previous, current))
            return result

        def make_x_intersect(x_value: float):
            def intersect(a: Point, b: Point) -> Point:
                t = (x_value - a.x) / (b.x - a.x) if abs(b.x - a.x) > _EPS else 0.0
                return Point(x_value, a.y + (b.y - a.y) * t)
            return intersect

        def make_y_intersect(y_value: float):
            def intersect(a: Point, b: Point) -> Point:
                t = (y_value - a.y) / (b.y - a.y) if abs(b.y - a.y) > _EPS else 0.0
                return Point(a.x + (b.x - a.x) * t, y_value)
            return intersect

        points = list(self._vertices)
        clips = [
            (lambda p, x=box.min_x: p.x >= x - _EPS, make_x_intersect(box.min_x)),
            (lambda p, x=box.max_x: p.x <= x + _EPS, make_x_intersect(box.max_x)),
            (lambda p, y=box.min_y: p.y >= y - _EPS, make_y_intersect(box.min_y)),
            (lambda p, y=box.max_y: p.y <= y + _EPS, make_y_intersect(box.max_y)),
        ]
        for inside, intersect in clips:
            points = clip(points, inside, intersect)
            if len(points) < 3:
                return None
        deduplicated = _deduplicate(points)
        if len(deduplicated) < 3 or abs(_signed_area(deduplicated)) <= _EPS:
            return None
        return Polygon(deduplicated)

    # ------------------------------------------------------------------ #
    # Constructors and dunder methods
    # ------------------------------------------------------------------ #
    @classmethod
    def rectangle(cls, min_x: float, min_y: float, max_x: float, max_y: float) -> "Polygon":
        """Axis-aligned rectangle from two corners."""
        if max_x <= min_x or max_y <= min_y:
            raise GeometryError("rectangle requires max_x > min_x and max_y > min_y")
        return cls(
            [
                Point(min_x, min_y),
                Point(max_x, min_y),
                Point(max_x, max_y),
                Point(min_x, max_y),
            ]
        )

    @classmethod
    def regular(cls, center: Point, radius: float, sides: int) -> "Polygon":
        """Regular polygon with *sides* vertices on a circle of *radius*."""
        if sides < 3:
            raise GeometryError("a regular polygon needs at least three sides")
        if radius <= 0:
            raise GeometryError("radius must be positive")
        return cls(
            [
                Point(
                    center.x + radius * math.cos(2.0 * math.pi * i / sides),
                    center.y + radius * math.sin(2.0 * math.pi * i / sides),
                )
                for i in range(sides)
            ]
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Polygon):
            return NotImplemented
        return self._vertices == other._vertices

    def __hash__(self) -> int:
        return hash(self._vertices)

    def __repr__(self) -> str:
        return f"Polygon({len(self._vertices)} vertices, area={self._area:.2f})"


def _signed_area(vertices: Sequence[Point]) -> float:
    """Shoelace signed area (positive for counter-clockwise order).

    The sum runs on coordinates relative to the first vertex: the result is
    mathematically identical but avoids the catastrophic cancellation the
    absolute-coordinate shoelace suffers for small polygons far from the
    origin (translation then preserves area to full precision).
    """
    origin = vertices[0]
    total = 0.0
    n = len(vertices)
    for i in range(n):
        p0 = vertices[i]
        p1 = vertices[(i + 1) % n]
        total += (p0.x - origin.x) * (p1.y - origin.y) - (p1.x - origin.x) * (p0.y - origin.y)
    return total / 2.0


def _deduplicate(points: Sequence[Point], tolerance: float = 1e-9) -> List[Point]:
    """Drop consecutive (and wrap-around) duplicate points."""
    result: List[Point] = []
    for point in points:
        if not result or not result[-1].is_close(point, tolerance):
            result.append(point)
    if len(result) > 1 and result[0].is_close(result[-1], tolerance):
        result.pop()
    return result


__all__ = ["Polygon", "BoundingBox"]
