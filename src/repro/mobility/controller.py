"""Moving Object Controller.

"The Moving Object Controller allows a user to set object parameters
including number, maximum speed, moving pattern, and lifespan.  In this layer,
users can also tune the sampling frequency in order to set the temporal
granularity for the raw trajectory data to be generated." (Section 2)

The controller translates an :class:`ObjectGenerationConfig` into concrete
:class:`~repro.mobility.objects.MovingObject` instances (initial population
plus Poisson arrivals), runs the simulation engine and returns the raw
trajectory data.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.building.distance import RoutePlanner
from repro.building.model import Building
from repro.core.errors import ConfigurationError
from repro.core.types import Timestamp
from repro.mobility.behavior import Behavior, WalkStayBehavior
from repro.mobility.crowd import CrowdInteractionModel
from repro.mobility.distributions import (
    ArrivalProcess,
    InitialDistribution,
    NoArrivals,
    Placement,
    UniformDistribution,
)
from repro.mobility.engine import EngineConfig, SimulationEngine, SimulationResult
from repro.mobility.intentions import DestinationIntention, Intention
from repro.mobility.objects import Lifespan, MovingObject
from repro.spatial import SpatialService


@dataclass
class ObjectGenerationConfig:
    """User configuration of the Moving Object Layer.

    Attributes:
        count: number of objects in the initial population.
        min_speed / max_speed: an object's maximum walking speed is drawn
            uniformly from this range (metres/second).
        min_lifespan / max_lifespan: each object's lifespan is drawn uniformly
            from this range (seconds), as Section 3.1 specifies.
        duration: total generation period in seconds.
        sampling_period: trajectory sampling period in seconds (the inverse of
            the sampling frequency).
        time_step: simulation step in seconds.
        routing_metric: ``"length"`` (minimum indoor walking distance) or
            ``"time"`` (minimum walking time).
        seed: seed for reproducible generation.
    """

    count: int = 50
    min_speed: float = 0.8
    max_speed: float = 1.8
    min_lifespan: float = 300.0
    max_lifespan: float = 900.0
    duration: float = 600.0
    sampling_period: float = 1.0
    time_step: float = 0.25
    routing_metric: str = "length"
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ConfigurationError("count must be non-negative")
        if self.min_speed <= 0 or self.max_speed < self.min_speed:
            raise ConfigurationError("require 0 < min_speed <= max_speed")
        if self.min_lifespan <= 0 or self.max_lifespan < self.min_lifespan:
            raise ConfigurationError("require 0 < min_lifespan <= max_lifespan")
        if self.duration <= 0:
            raise ConfigurationError("duration must be positive")
        if self.sampling_period <= 0:
            raise ConfigurationError("sampling_period must be positive")
        if self.routing_metric not in ("length", "time"):
            raise ConfigurationError("routing_metric must be 'length' or 'time'")


class MovingObjectController:
    """Creates moving objects and generates their raw trajectory data."""

    def __init__(
        self,
        building: Building,
        config: Optional[ObjectGenerationConfig] = None,
        distribution: Optional[InitialDistribution] = None,
        arrival_process: Optional[ArrivalProcess] = None,
        intention: Optional[Intention] = None,
        behavior: Optional[Behavior] = None,
        planner: Optional[RoutePlanner] = None,
        crowd_model: Optional[CrowdInteractionModel] = None,
        first_object_index: int = 1,
        arrival_id_prefix: Optional[str] = None,
        engine_seed: Optional[int] = None,
        spatial: Optional[SpatialService] = None,
    ) -> None:
        """*first_object_index*, *arrival_id_prefix* and *engine_seed* exist
        for sharded generation: a shard numbers its initial objects from its
        global offset (so ids match a serial run), namespaces the ids of its
        Poisson arrivals (so shards never collide), and seeds the simulation
        engine independently of the object-creation RNG.  *spatial* shares
        the building-wide cached spatial service with the engine (one is
        created around *planner* when omitted)."""
        if first_object_index < 1:
            raise ConfigurationError("first_object_index must be at least 1")
        self.building = building
        self.config = config or ObjectGenerationConfig()
        self.distribution = distribution or UniformDistribution()
        self.arrival_process = arrival_process or NoArrivals()
        self.intention = intention or DestinationIntention()
        self.behavior = behavior or WalkStayBehavior()
        self.crowd_model = crowd_model
        self.spatial = spatial if spatial is not None else SpatialService(
            building, planner=planner
        )
        self.rng = random.Random(self.config.seed)
        self._id_counter = itertools.count(first_object_index)
        self._arrival_counter = itertools.count(1)
        self.arrival_id_prefix = arrival_id_prefix
        self.engine_seed = engine_seed
        self.objects: List[MovingObject] = []
        self.last_result: Optional[SimulationResult] = None

    @property
    def planner(self) -> RoutePlanner:
        """The door-to-door route planner (owned by the spatial service)."""
        return self.spatial.planner

    # ------------------------------------------------------------------ #
    # Object creation
    # ------------------------------------------------------------------ #
    def create_objects(self) -> List[MovingObject]:
        """Instantiate and place the initial population of objects."""
        placements = self.distribution.place(self.building, self.config.count, self.rng)
        objects = [
            self._new_object(birth=0.0, placement=placement) for placement in placements
        ]
        self.objects = objects
        return objects

    def create_arrivals(self) -> List[Tuple[Timestamp, MovingObject]]:
        """Instantiate objects that emerge during the generation period."""
        arrivals = self.arrival_process.arrivals(
            self.building, self.config.duration, self.rng
        )
        result: List[Tuple[Timestamp, MovingObject]] = []
        for start_time, placement in arrivals:
            result.append(
                (start_time, self._new_object(birth=start_time, placement=placement, arrival=True))
            )
        return result

    def _object_id(self, arrival: bool) -> str:
        if arrival and self.arrival_id_prefix is not None:
            return f"{self.arrival_id_prefix}_{next(self._arrival_counter):04d}"
        return f"obj_{next(self._id_counter):04d}"

    def _new_object(
        self, birth: float, placement: Placement, arrival: bool = False
    ) -> MovingObject:
        floor_id, point = placement
        lifespan_duration = self.rng.uniform(
            self.config.min_lifespan, self.config.max_lifespan
        )
        moving_object = MovingObject(
            object_id=self._object_id(arrival),
            max_speed=self.rng.uniform(self.config.min_speed, self.config.max_speed),
            lifespan=Lifespan(birth=birth, death=birth + lifespan_duration),
            routing_metric=self.config.routing_metric,
        )
        moving_object.place_at(floor_id, point)
        return moving_object

    # ------------------------------------------------------------------ #
    # Generation
    # ------------------------------------------------------------------ #
    def generate(
        self,
        snapshot_times: Optional[List[float]] = None,
        record_sink=None,
    ) -> SimulationResult:
        """Run the full Moving Object Layer and return the simulation result.

        *record_sink* is forwarded to :meth:`SimulationEngine.run` so callers
        (e.g. the streaming pipeline's progress hook) can observe trajectory
        samples as they are recorded.
        """
        engine_seed = self.engine_seed if self.engine_seed is not None else self.config.seed
        engine = SimulationEngine(
            building=self.building,
            spatial=self.spatial,
            config=EngineConfig(
                duration=self.config.duration,
                time_step=self.config.time_step,
                sampling_period=self.config.sampling_period,
                seed=engine_seed,
            ),
            intention=self.intention,
            behavior=self.behavior,
            crowd_model=self.crowd_model,
        )
        objects = self.create_objects() if not self.objects else self.objects
        arrivals = self.create_arrivals()
        result = engine.run(
            objects,
            arrivals=arrivals,
            snapshot_times=snapshot_times,
            record_sink=record_sink,
        )
        self.last_result = result
        return result


__all__ = ["ObjectGenerationConfig", "MovingObjectController"]
