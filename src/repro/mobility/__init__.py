"""Moving Object Layer: objects, distributions, patterns, simulation engine."""

from repro.mobility.objects import Lifespan, MovementState, MovingObject
from repro.mobility.trajectory import Trajectory, TrajectorySet
from repro.mobility.distributions import (
    ArrivalProcess,
    CrowdOutliersDistribution,
    CrowdSpec,
    InitialDistribution,
    NoArrivals,
    PoissonArrivals,
    UniformDistribution,
    distribution_by_name,
)
from repro.mobility.intentions import (
    DestinationIntention,
    Intention,
    RandomWayIntention,
    intention_by_name,
)
from repro.mobility.behavior import (
    Behavior,
    ContinuousWalkBehavior,
    VariableSpeedBehavior,
    WalkStayBehavior,
    behavior_by_name,
)
from repro.mobility.crowd import (
    CrowdInteractionModel,
    DensitySlowdownModel,
    NoInteraction,
    crowd_model_by_name,
)
from repro.mobility.engine import EngineConfig, SimulationEngine, SimulationResult
from repro.mobility.controller import MovingObjectController, ObjectGenerationConfig

__all__ = [
    "Lifespan",
    "MovementState",
    "MovingObject",
    "Trajectory",
    "TrajectorySet",
    "ArrivalProcess",
    "CrowdOutliersDistribution",
    "CrowdSpec",
    "InitialDistribution",
    "NoArrivals",
    "PoissonArrivals",
    "UniformDistribution",
    "distribution_by_name",
    "DestinationIntention",
    "Intention",
    "RandomWayIntention",
    "intention_by_name",
    "Behavior",
    "ContinuousWalkBehavior",
    "VariableSpeedBehavior",
    "WalkStayBehavior",
    "behavior_by_name",
    "CrowdInteractionModel",
    "DensitySlowdownModel",
    "NoInteraction",
    "crowd_model_by_name",
    "EngineConfig",
    "SimulationEngine",
    "SimulationResult",
    "MovingObjectController",
    "ObjectGenerationConfig",
]
