"""Moving intentions: where an object decides to go next.

Section 3.1 (3) splits a moving pattern into *intention*, *routing* and
*behaviour*.  For intention, the paper offers the **destination model** (the
object moves toward a destination) and the **random-way model** (it moves
randomly).  Both are implemented here as strategies that, whenever an object
needs a new goal, return the next target location.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.building.model import Building, Partition
from repro.building.topology import AccessibilityGraph
from repro.core.errors import ConfigurationError
from repro.core.types import FloorId
from repro.geometry.point import Point

#: A movement goal is a (floor_id, point) pair.
Goal = Tuple[FloorId, Point]


class Intention:
    """Strategy producing the next movement goal of an object."""

    name = "abstract"

    def next_goal(
        self,
        building: Building,
        current_floor: FloorId,
        current_position: Point,
        rng: random.Random,
    ) -> Goal:
        """Return the next goal for an object currently at the given position."""
        raise NotImplementedError


class DestinationIntention(Intention):
    """The destination model: pick a (possibly semantic) destination to walk to.

    Args:
        target_tags: when given, destinations are drawn preferentially from
            partitions carrying one of these semantic tags (e.g. customers
            heading to ``("shop", "canteen")``); with probability
            ``1 - tag_bias`` any partition may still be chosen.
        tag_bias: probability of honouring ``target_tags`` for a given goal.
        allow_same_partition: whether the next destination may lie in the
            object's current partition.
    """

    name = "destination"

    def __init__(
        self,
        target_tags: Optional[Sequence[str]] = None,
        tag_bias: float = 0.8,
        allow_same_partition: bool = False,
    ) -> None:
        if not 0.0 <= tag_bias <= 1.0:
            raise ConfigurationError("tag_bias must be within [0, 1]")
        self.target_tags = tuple(target_tags) if target_tags else None
        self.tag_bias = tag_bias
        self.allow_same_partition = allow_same_partition

    def next_goal(
        self,
        building: Building,
        current_floor: FloorId,
        current_position: Point,
        rng: random.Random,
    ) -> Goal:
        current_partition = building.floor(current_floor).partition_at(current_position)
        candidates = self._candidates(building, rng)
        if not self.allow_same_partition and current_partition is not None:
            filtered = [
                p for p in candidates
                if not (
                    p.floor_id == current_floor
                    and p.partition_id == current_partition.partition_id
                )
            ]
            if filtered:
                candidates = filtered
        partition = rng.choices(candidates, weights=[p.area for p in candidates], k=1)[0]
        return partition.floor_id, partition.random_point(rng)

    def _candidates(self, building: Building, rng: random.Random) -> List[Partition]:
        partitions = building.all_partitions()
        if self.target_tags is not None and rng.random() < self.tag_bias:
            tagged = [p for p in partitions if p.semantic_tag in self.target_tags]
            if tagged:
                return tagged
        return partitions


class RandomWayIntention(Intention):
    """The random-way model: wander to a random neighbouring partition.

    The next goal is a random point inside a partition adjacent to the current
    one (falling back to any partition when the current one is unknown or has
    no traversable neighbour), which produces locally random movement.
    """

    name = "random-way"

    def __init__(self, graph: Optional[AccessibilityGraph] = None) -> None:
        self._graph = graph

    def _ensure_graph(self, building: Building) -> AccessibilityGraph:
        if self._graph is None or self._graph.building is not building:
            self._graph = AccessibilityGraph(building)
        return self._graph

    def next_goal(
        self,
        building: Building,
        current_floor: FloorId,
        current_position: Point,
        rng: random.Random,
    ) -> Goal:
        graph = self._ensure_graph(building)
        current_partition = building.floor(current_floor).partition_at(current_position)
        if current_partition is not None:
            neighbors = graph.neighbors(current_floor, current_partition.partition_id)
            if neighbors:
                floor_id, partition_id = rng.choice(neighbors)
                partition = building.partition(floor_id, partition_id)
                return floor_id, partition.random_point(rng)
        location = building.random_location(rng)
        x, y = location.point()
        return location.floor_id, Point(x, y)


def intention_by_name(name: str, **kwargs) -> Intention:
    """Factory used by the configuration loader."""
    normalized = name.lower().replace("_", "-")
    if normalized == "destination":
        return DestinationIntention(**kwargs)
    if normalized in ("random-way", "randomway", "random"):
        return RandomWayIntention(**kwargs)
    raise ConfigurationError(
        f"unknown intention {name!r}; expected 'destination' or 'random-way'"
    )


__all__ = [
    "Goal",
    "Intention",
    "DestinationIntention",
    "RandomWayIntention",
    "intention_by_name",
]
