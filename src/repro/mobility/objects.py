"""Indoor moving objects.

The Moving Object Controller configures objects' "number, maximum speed,
moving pattern, and lifespan" (Section 2).  A :class:`MovingObject` couples
that static configuration with the runtime movement state advanced by the
simulation engine.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.building.distance import Route
from repro.core.errors import MovementError
from repro.core.types import FloorId, ObjectId, Timestamp
from repro.geometry.point import Point


class MovementState(enum.Enum):
    """The per-tick movement state of an object."""

    WALKING = "walking"
    STAYING = "staying"
    FINISHED = "finished"


@dataclass
class Lifespan:
    """Birth and death times of a moving object."""

    birth: Timestamp
    death: Timestamp

    def __post_init__(self) -> None:
        if self.death < self.birth:
            raise MovementError("lifespan death must not precede birth")

    @property
    def duration(self) -> float:
        return self.death - self.birth

    def alive_at(self, t: Timestamp) -> bool:
        """Whether the object exists at time *t*."""
        return self.birth <= t <= self.death


@dataclass
class MovingObject:
    """One simulated indoor moving object.

    Attributes:
        object_id: unique identifier.
        max_speed: maximum walking speed in metres/second; the effective
            speed is further modulated by the behaviour and by partition
            speed factors.
        lifespan: when the object enters and leaves the building.
        routing_metric: ``"length"`` (minimum indoor walking distance) or
            ``"time"`` (minimum walking time).
    """

    object_id: ObjectId
    max_speed: float
    lifespan: Lifespan
    routing_metric: str = "length"

    # Runtime state (owned by the simulation engine) ----------------------
    floor_id: FloorId = 0
    position: Point = field(default_factory=lambda: Point(0.0, 0.0))
    state: MovementState = MovementState.STAYING
    route: Optional[Route] = None
    route_leg_index: int = 0
    route_leg_progress: float = 0.0
    stay_until: Timestamp = 0.0
    speed_multiplier: float = 1.0
    destinations_reached: int = 0

    def __post_init__(self) -> None:
        if self.max_speed <= 0:
            raise MovementError(f"object {self.object_id}: max_speed must be positive")
        if self.routing_metric not in ("length", "time"):
            raise MovementError(
                f"object {self.object_id}: routing_metric must be 'length' or 'time'"
            )

    # ------------------------------------------------------------------ #
    # Lifecycle helpers
    # ------------------------------------------------------------------ #
    def alive_at(self, t: Timestamp) -> bool:
        """Whether the object is inside the building at time *t*."""
        return self.lifespan.alive_at(t) and self.state != MovementState.FINISHED

    def place_at(self, floor_id: FloorId, position: Point) -> None:
        """Teleport the object (used for initial placement)."""
        self.floor_id = floor_id
        self.position = position

    def begin_route(self, route: Route) -> None:
        """Start walking along *route*."""
        if route.is_empty:
            raise MovementError(f"object {self.object_id}: cannot follow an empty route")
        self.route = route
        self.route_leg_index = 0
        self.route_leg_progress = 0.0
        self.state = MovementState.WALKING

    def begin_stay(self, until: Timestamp) -> None:
        """Pause in place until time *until*."""
        self.stay_until = until
        self.state = MovementState.STAYING

    def finish(self) -> None:
        """Mark the object as having left the building."""
        self.state = MovementState.FINISHED
        self.route = None

    @property
    def has_route(self) -> bool:
        """Whether a route is currently assigned and not yet completed."""
        return (
            self.route is not None
            and self.route_leg_index < len(self.route.waypoints) - 1
        )

    @property
    def effective_speed(self) -> float:
        """Current walking speed before partition speed factors."""
        return self.max_speed * self.speed_multiplier

    def current_waypoints(self) -> List:
        """Waypoints of the active route (empty when idle)."""
        if self.route is None:
            return []
        return self.route.waypoints


__all__ = ["MovementState", "Lifespan", "MovingObject"]
