"""Raw ("ground truth") trajectories.

A trajectory is the sequence of ``(o_id, loc, t)`` samples of one moving
object, recorded at the trajectory sampling frequency configured in the
Moving Object Layer.  Because the generator controls the sampling frequency,
the ground truth can be preserved "to an arbitrarily detailed degree"
(Section 1); this module also offers resampling so the same movement can be
exported at a coarser granularity.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.errors import MovementError
from repro.core.types import IndoorLocation, ObjectId, Timestamp, TrajectoryRecord
from repro.geometry.point import Point


@dataclass
class Trajectory:
    """The ordered ground-truth samples of one moving object."""

    object_id: ObjectId
    records: List[TrajectoryRecord] = field(default_factory=list)

    def append(self, record: TrajectoryRecord) -> None:
        """Append a sample; timestamps must be non-decreasing."""
        if record.object_id != self.object_id:
            raise MovementError(
                f"record for object {record.object_id} appended to trajectory of "
                f"{self.object_id}"
            )
        if self.records and record.t < self.records[-1].t:
            raise MovementError(
                f"trajectory {self.object_id}: timestamps must be non-decreasing"
            )
        self.records.append(record)

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    @property
    def is_empty(self) -> bool:
        return not self.records

    @property
    def start_time(self) -> Timestamp:
        """Timestamp of the first sample."""
        self._require_samples()
        return self.records[0].t

    @property
    def end_time(self) -> Timestamp:
        """Timestamp of the last sample."""
        self._require_samples()
        return self.records[-1].t

    @property
    def duration(self) -> float:
        """Time covered by the trajectory in seconds."""
        if len(self.records) < 2:
            return 0.0
        return self.end_time - self.start_time

    @property
    def length(self) -> float:
        """Total travelled planar distance in metres (same-floor legs only)."""
        total = 0.0
        for previous, current in zip(self.records, self.records[1:]):
            if previous.location.floor_id != current.location.floor_id:
                continue
            if previous.location.has_point and current.location.has_point:
                x0, y0 = previous.location.point()
                x1, y1 = current.location.point()
                total += math.hypot(x1 - x0, y1 - y0)
        return total

    def floors_visited(self) -> List[int]:
        """Distinct floors visited, in visit order."""
        floors: List[int] = []
        for record in self.records:
            if not floors or floors[-1] != record.location.floor_id:
                floors.append(record.location.floor_id)
        return floors

    def partitions_visited(self) -> List[str]:
        """Distinct partitions visited, in visit order (skips unknown ones)."""
        partitions: List[str] = []
        for record in self.records:
            partition_id = record.location.partition_id
            if partition_id is None:
                continue
            if not partitions or partitions[-1] != partition_id:
                partitions.append(partition_id)
        return partitions

    # ------------------------------------------------------------------ #
    # Interpolation and resampling
    # ------------------------------------------------------------------ #
    def location_at(self, t: Timestamp) -> Optional[IndoorLocation]:
        """Ground-truth location at time *t* (linear interpolation).

        Returns ``None`` when *t* falls outside the trajectory's lifespan.
        Interpolation across a floor change keeps the earlier floor until the
        later sample's time.
        """
        if self.is_empty:
            return None
        if t < self.start_time or t > self.end_time:
            # Tolerate float round-off at the lifespan boundaries, e.g. a
            # caller computing ``start + (end - start) * 1.0``.
            if math.isclose(t, self.start_time, rel_tol=1e-9, abs_tol=1e-9):
                t = self.start_time
            elif math.isclose(t, self.end_time, rel_tol=1e-9, abs_tol=1e-9):
                t = self.end_time
            else:
                return None
        times = [record.t for record in self.records]
        index = bisect.bisect_right(times, t) - 1
        index = max(0, min(index, len(self.records) - 1))
        current = self.records[index]
        if index == len(self.records) - 1 or math.isclose(current.t, t):
            return current.location
        following = self.records[index + 1]
        if (
            current.location.floor_id != following.location.floor_id
            or not current.location.has_point
            or not following.location.has_point
        ):
            return current.location
        span = following.t - current.t
        fraction = 0.0 if span <= 0 else (t - current.t) / span
        x0, y0 = current.location.point()
        x1, y1 = following.location.point()
        return IndoorLocation(
            building_id=current.location.building_id,
            floor_id=current.location.floor_id,
            partition_id=current.location.partition_id,
            x=x0 + (x1 - x0) * fraction,
            y=y0 + (y1 - y0) * fraction,
        )

    def resample(self, period: float) -> "Trajectory":
        """Return a copy sampled every *period* seconds (ground-truth thinning)."""
        if period <= 0:
            raise MovementError("resample period must be positive")
        resampled = Trajectory(self.object_id)
        if self.is_empty:
            return resampled
        t = self.start_time
        while t <= self.end_time + 1e-9:
            location = self.location_at(min(t, self.end_time))
            if location is not None:
                resampled.append(TrajectoryRecord(self.object_id, location, min(t, self.end_time)))
            t += period
        # Always keep the final ground-truth sample so the lifespan end is preserved.
        if resampled.records and resampled.records[-1].t < self.end_time - 1e-9:
            final = self.location_at(self.end_time)
            if final is not None:
                resampled.append(TrajectoryRecord(self.object_id, final, self.end_time))
        return resampled

    def slice(self, t_start: Timestamp, t_end: Timestamp) -> "Trajectory":
        """Samples with ``t_start <= t <= t_end``."""
        result = Trajectory(self.object_id)
        for record in self.records:
            if t_start <= record.t <= t_end:
                result.append(record)
        return result

    def average_speed(self) -> float:
        """Mean planar speed in metres/second over the whole trajectory."""
        if self.duration <= 0:
            return 0.0
        return self.length / self.duration

    def to_records(self) -> List[TrajectoryRecord]:
        """The samples as a plain list (storage format ``(o_id, loc, t)``)."""
        return list(self.records)

    def _require_samples(self) -> None:
        if self.is_empty:
            raise MovementError(f"trajectory {self.object_id} has no samples")


class TrajectorySet:
    """The trajectories of every generated object, keyed by object id."""

    def __init__(self) -> None:
        self._trajectories: Dict[ObjectId, Trajectory] = {}

    def add_record(self, record: TrajectoryRecord) -> None:
        """Route a sample to its object's trajectory (creating it on demand)."""
        trajectory = self._trajectories.get(record.object_id)
        if trajectory is None:
            trajectory = Trajectory(record.object_id)
            self._trajectories[record.object_id] = trajectory
        trajectory.append(record)

    def get(self, object_id: ObjectId) -> Optional[Trajectory]:
        return self._trajectories.get(object_id)

    def __getitem__(self, object_id: ObjectId) -> Trajectory:
        return self._trajectories[object_id]

    def __contains__(self, object_id: ObjectId) -> bool:
        return object_id in self._trajectories

    def __len__(self) -> int:
        return len(self._trajectories)

    def __iter__(self):
        return iter(self._trajectories.values())

    @property
    def object_ids(self) -> List[ObjectId]:
        return sorted(self._trajectories)

    @property
    def total_records(self) -> int:
        """Total number of samples across all trajectories."""
        return sum(len(t) for t in self._trajectories.values())

    def all_records(self) -> List[TrajectoryRecord]:
        """Every sample of every trajectory, sorted by time."""
        records: List[TrajectoryRecord] = []
        for trajectory in self._trajectories.values():
            records.extend(trajectory.records)
        records.sort(key=lambda record: (record.t, record.object_id))
        return records

    def snapshot(self, t: Timestamp) -> Dict[ObjectId, IndoorLocation]:
        """Ground-truth locations of every object alive at time *t*."""
        positions: Dict[ObjectId, IndoorLocation] = {}
        for object_id, trajectory in self._trajectories.items():
            location = trajectory.location_at(t)
            if location is not None:
                positions[object_id] = location
        return positions

    def resample(self, period: float) -> "TrajectorySet":
        """Resample every trajectory at *period* seconds."""
        result = TrajectorySet()
        for trajectory in self._trajectories.values():
            result._trajectories[trajectory.object_id] = trajectory.resample(period)
        return result


__all__ = ["Trajectory", "TrajectorySet"]
