"""Fixed-step simulation engine advancing indoor moving objects.

The engine owns the simulation clock.  On every tick it advances each alive
object along its current route (respecting partition speed factors and the
behaviour's speed multiplier / pauses) and, at the configured trajectory
sampling frequency, records a ground-truth sample ``(o_id, loc, t)`` for every
alive object.  The result is a :class:`~repro.mobility.trajectory.TrajectorySet`.

The paper emphasises that the trajectory sampling frequency is independent of
the positioning sampling frequency (Section 2): the engine only produces the
former; the Positioning Layer later samples RSSI at its own rate from the
ground truth.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.building.distance import Route, RoutePlanner
from repro.building.model import Building
from repro.core.errors import MovementError, RoutingError
from repro.core.types import IndoorLocation, ObjectId, Timestamp, TrajectoryRecord
from repro.geometry.point import Point
from repro.mobility.behavior import Behavior, WalkStayBehavior
from repro.mobility.crowd import CrowdInteractionModel, NoInteraction
from repro.mobility.intentions import DestinationIntention, Intention
from repro.mobility.objects import MovementState, MovingObject
from repro.mobility.trajectory import TrajectorySet
from repro.spatial import SpatialService


@dataclass
class EngineConfig:
    """Simulation parameters of the Moving Object Layer."""

    duration: float = 600.0
    time_step: float = 0.25
    sampling_period: float = 1.0
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise MovementError("duration must be positive")
        if self.time_step <= 0:
            raise MovementError("time_step must be positive")
        if self.sampling_period < self.time_step:
            # Sampling can never be finer than the simulation step.
            self.sampling_period = self.time_step


@dataclass
class SimulationResult:
    """Output of one simulation run."""

    trajectories: TrajectorySet
    duration: float
    objects: List[MovingObject] = field(default_factory=list)
    snapshots: Dict[float, Dict[ObjectId, IndoorLocation]] = field(default_factory=dict)

    @property
    def object_count(self) -> int:
        return len(self.objects)

    @property
    def total_samples(self) -> int:
        return self.trajectories.total_records


class SimulationEngine:
    """Advances moving objects through a building over simulated time."""

    def __init__(
        self,
        building: Building,
        planner: Optional[RoutePlanner] = None,
        config: Optional[EngineConfig] = None,
        intention: Optional[Intention] = None,
        behavior: Optional[Behavior] = None,
        crowd_model: Optional[CrowdInteractionModel] = None,
        spatial: Optional[SpatialService] = None,
    ) -> None:
        """Routing and point location go through *spatial* (the building-wide
        cached :class:`~repro.spatial.SpatialService`); when omitted, one is
        created around *planner* (or a fresh planner) for this engine."""
        self.building = building
        self.spatial = spatial if spatial is not None else SpatialService(
            building, planner=planner
        )
        self.config = config or EngineConfig()
        self.intention = intention or DestinationIntention()
        self.behavior = behavior or WalkStayBehavior()
        #: Interference between moving objects (Section 4 extension point).
        self.crowd_model = crowd_model or NoInteraction()
        self.rng = random.Random(self.config.seed)
        #: Positions of the currently active objects, refreshed every tick and
        #: used by the crowd interaction model.
        self._active_snapshot: List = []
        #: Optional per-tick observers, e.g. for live visualisation.
        self.observers: List[Callable[[float, List[MovingObject]], None]] = []

    @property
    def planner(self) -> RoutePlanner:
        """The underlying door-to-door route planner (owned by the service)."""
        return self.spatial.planner

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def run(
        self,
        objects: List[MovingObject],
        arrivals: Optional[List[Tuple[Timestamp, MovingObject]]] = None,
        snapshot_times: Optional[List[float]] = None,
        record_sink: Optional[Callable[[TrajectoryRecord], None]] = None,
    ) -> SimulationResult:
        """Simulate *objects* (plus timed *arrivals*) for the configured duration.

        Args:
            objects: objects present from their ``lifespan.birth`` onwards
                (already placed at their initial position).
            arrivals: extra objects entering at given times (already placed at
                their emerging location).
            snapshot_times: times at which a full position snapshot is kept in
                the result (the paper's demo pauses generation to extract a
                snapshot of the moving objects).
            record_sink: called with every trajectory record as it is
                recorded, in emission order — the streaming pipeline's
                progress hook without waiting for the run to finish.
        """
        trajectories = TrajectorySet()
        pending = sorted(arrivals or [], key=lambda pair: pair[0])
        all_objects: List[MovingObject] = list(objects)
        activated: set = set()
        snapshots: Dict[float, Dict[ObjectId, IndoorLocation]] = {}
        snapshot_queue = sorted(snapshot_times or [])

        config = self.config
        steps = int(round(config.duration / config.time_step))
        samples_every = max(1, int(round(config.sampling_period / config.time_step)))
        t = 0.0
        for step in range(steps + 1):
            # Inject arrivals whose start time has come.
            while pending and pending[0][0] <= t + 1e-9:
                _, new_object = pending.pop(0)
                all_objects.append(new_object)
            # Activate objects whose birth time has come (assign a first goal).
            for moving_object in all_objects:
                if moving_object.object_id in activated:
                    continue
                if moving_object.lifespan.birth <= t + 1e-9:
                    self._activate(moving_object, t)
                    activated.add(moving_object.object_id)
            active = [
                o for o in all_objects
                if o.object_id in activated and o.alive_at(t)
            ]
            # Snapshot of everyone's position for the crowd interaction model.
            self._active_snapshot = [
                (o.object_id, o.floor_id, o.position) for o in active
            ]
            # Advance every active object.
            for moving_object in active:
                if t > moving_object.lifespan.death:
                    moving_object.finish()
                    continue
                self._step_object(moving_object, t)
            # Record ground truth at the trajectory sampling frequency.
            if step % samples_every == 0:
                for moving_object in active:
                    if moving_object.state == MovementState.FINISHED:
                        continue
                    record = self._record_of(moving_object, t)
                    trajectories.add_record(record)
                    if record_sink is not None:
                        record_sink(record)
            # Snapshots requested by the caller.
            while snapshot_queue and snapshot_queue[0] <= t + 1e-9:
                snapshot_time = snapshot_queue.pop(0)
                snapshots[snapshot_time] = {
                    o.object_id: self._record_of(o, t).location
                    for o in active
                    if o.state != MovementState.FINISHED
                }
            for observer in self.observers:
                observer(t, active)
            t += config.time_step
        return SimulationResult(
            trajectories=trajectories,
            duration=config.duration,
            objects=all_objects,
            snapshots=snapshots,
        )

    # ------------------------------------------------------------------ #
    # Per-object stepping
    # ------------------------------------------------------------------ #
    def _activate(self, moving_object: MovingObject, now: float) -> None:
        """Give a newly active object its first goal."""
        moving_object.speed_multiplier = self.behavior.speed_multiplier(self.rng)
        self._assign_new_route(moving_object, now)

    def _step_object(self, moving_object: MovingObject, now: float) -> None:
        if moving_object.state == MovementState.STAYING:
            if now >= moving_object.stay_until:
                if moving_object.has_route:
                    moving_object.state = MovementState.WALKING
                else:
                    self._assign_new_route(moving_object, now)
            return
        if moving_object.state != MovementState.WALKING:
            return
        # Random on-path pause (walk-stay mechanism).
        pause_rate = self.behavior.pause_probability_per_second()
        if pause_rate > 0 and self.rng.random() < pause_rate * self.config.time_step:
            moving_object.begin_stay(now + self.behavior.pause_duration(self.rng))
            return
        self._advance_along_route(moving_object, now)

    def _advance_along_route(self, moving_object: MovingObject, now: float) -> None:
        route = moving_object.route
        if route is None or not moving_object.has_route:
            self._arrive(moving_object, now)
            return
        remaining_time = self.config.time_step
        while remaining_time > 0 and moving_object.has_route:
            waypoints = route.waypoints
            current_wp = waypoints[moving_object.route_leg_index]
            next_wp = waypoints[moving_object.route_leg_index + 1]
            leg_vector = next_wp.point - current_wp.point
            leg_length = leg_vector.norm()
            speed = self._current_speed(moving_object, next_wp.floor_id, next_wp.partition_id)
            if next_wp.floor_id != current_wp.floor_id:
                # Staircase leg: use the connector length instead of the
                # planar distance and keep the object at the stair endpoints.
                staircase = self._staircase_length(route, current_wp, next_wp)
                leg_length = staircase
            if leg_length <= 1e-9:
                self._complete_leg(moving_object, next_wp)
                continue
            distance_left = leg_length * (1.0 - moving_object.route_leg_progress)
            travel = speed * remaining_time
            if travel >= distance_left:
                time_used = distance_left / speed if speed > 0 else remaining_time
                remaining_time -= time_used
                self._complete_leg(moving_object, next_wp)
            else:
                moving_object.route_leg_progress += travel / leg_length
                fraction = moving_object.route_leg_progress
                if next_wp.floor_id == current_wp.floor_id:
                    moving_object.position = current_wp.point.lerp(next_wp.point, fraction)
                    moving_object.floor_id = current_wp.floor_id
                else:
                    # While on the stairs, report the nearer endpoint.
                    if fraction < 0.5:
                        moving_object.position = current_wp.point
                        moving_object.floor_id = current_wp.floor_id
                    else:
                        moving_object.position = next_wp.point
                        moving_object.floor_id = next_wp.floor_id
                remaining_time = 0.0
        if not moving_object.has_route:
            self._arrive(moving_object, now)

    def _complete_leg(self, moving_object: MovingObject, next_wp) -> None:
        moving_object.position = next_wp.point
        moving_object.floor_id = next_wp.floor_id
        moving_object.route_leg_index += 1
        moving_object.route_leg_progress = 0.0

    def _arrive(self, moving_object: MovingObject, now: float) -> None:
        moving_object.destinations_reached += 1
        moving_object.route = None
        stay = self.behavior.stay_duration_at_destination(self.rng)
        moving_object.speed_multiplier = self.behavior.speed_multiplier(self.rng)
        if stay > 0:
            moving_object.begin_stay(now + stay)
        else:
            self._assign_new_route(moving_object, now)

    def _assign_new_route(self, moving_object: MovingObject, now: float) -> None:
        """Ask the intention for a goal and plan a route to it."""
        for _ in range(5):
            goal_floor, goal_point = self.intention.next_goal(
                self.building, moving_object.floor_id, moving_object.position, self.rng
            )
            try:
                route = self.spatial.shortest_route(
                    moving_object.floor_id,
                    moving_object.position,
                    goal_floor,
                    goal_point,
                    metric=moving_object.routing_metric,
                    walking_speed=moving_object.effective_speed,
                )
            except RoutingError:
                continue
            if route.is_empty or len(route.waypoints) < 2:
                continue
            moving_object.begin_route(route)
            return
        # No reachable goal found: stay put for a while and try again later.
        moving_object.begin_stay(now + 5.0)

    def _current_speed(self, moving_object: MovingObject, floor_id, partition_id) -> float:
        factor = 0.85
        try:
            partition = self.building.partition(floor_id, partition_id)
            factor = partition.speed_factor
        except Exception:
            pass
        crowd_factor = self._crowd_factor(moving_object)
        return max(moving_object.effective_speed * factor * crowd_factor, 0.05)

    def _crowd_factor(self, moving_object: MovingObject) -> float:
        """Interference from nearby objects (1.0 when no crowd model is set)."""
        if isinstance(self.crowd_model, NoInteraction):
            return 1.0
        neighbors = [
            (floor_id, position)
            for object_id, floor_id, position in self._active_snapshot
            if object_id != moving_object.object_id
        ]
        return self.crowd_model.speed_factor(
            moving_object.floor_id, moving_object.position, neighbors
        )

    def _staircase_length(self, route: Route, current_wp, next_wp) -> float:
        for staircase_id in route.staircases:
            staircase = self.building.staircases.get(staircase_id)
            if staircase is None:
                continue
            if staircase.connects_floor(current_wp.floor_id) and staircase.connects_floor(next_wp.floor_id):
                return staircase.length
        return max(current_wp.point.distance_to(next_wp.point), 3.0)

    def _record_of(self, moving_object: MovingObject, t: float) -> TrajectoryRecord:
        # Point location through the spatial service: an object that stays
        # at a destination samples the same coordinate for many ticks, which
        # the locate cache answers without re-running partition lookup.
        location = self.spatial.locate(moving_object.floor_id, moving_object.position)
        return TrajectoryRecord(object_id=moving_object.object_id, location=location, t=t)


__all__ = ["EngineConfig", "SimulationResult", "SimulationEngine"]
