"""Moving behaviours: how an object walks along its route.

Section 3.1 (3), *behavior*: "users can choose from pre-defined mechanisms to
configure details such as the change of speed, the stop during the moving,
etc.  For example, in the walk-stay mechanism, an object will switch between
the states 'walking along the path to its destination' and 'staying at the
destination or a location on path' after a random period of time."
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.core.errors import ConfigurationError


class Behavior:
    """Strategy controlling stops and speed changes while moving."""

    name = "abstract"

    def stay_duration_at_destination(self, rng: random.Random) -> float:
        """Seconds to stay once a destination is reached (0 = keep going)."""
        return 0.0

    def pause_probability_per_second(self) -> float:
        """Probability per simulated second of pausing somewhere on the path."""
        return 0.0

    def pause_duration(self, rng: random.Random) -> float:
        """Seconds of an on-path pause."""
        return 0.0

    def speed_multiplier(self, rng: random.Random) -> float:
        """Multiplier applied to the object's maximum speed for the next leg."""
        return 1.0


class ContinuousWalkBehavior(Behavior):
    """Walk at a steady fraction of maximum speed, never stopping."""

    name = "continuous"

    def __init__(self, speed_fraction: float = 0.9) -> None:
        if not 0.0 < speed_fraction <= 1.0:
            raise ConfigurationError("speed_fraction must be in (0, 1]")
        self.speed_fraction = speed_fraction

    def speed_multiplier(self, rng: random.Random) -> float:
        return self.speed_fraction


class WalkStayBehavior(Behavior):
    """The walk-stay mechanism of the paper.

    The object walks toward its destination, stays there for a random period
    drawn from ``[min_stay, max_stay]`` and may also pause mid-path with a
    small probability per second.
    """

    name = "walk-stay"

    def __init__(
        self,
        min_stay: float = 10.0,
        max_stay: float = 120.0,
        on_path_stop_rate: float = 0.01,
        on_path_stop_min: float = 2.0,
        on_path_stop_max: float = 15.0,
    ) -> None:
        if min_stay < 0 or max_stay < min_stay:
            raise ConfigurationError("require 0 <= min_stay <= max_stay")
        if not 0.0 <= on_path_stop_rate <= 1.0:
            raise ConfigurationError("on_path_stop_rate must be within [0, 1]")
        if on_path_stop_min < 0 or on_path_stop_max < on_path_stop_min:
            raise ConfigurationError("require 0 <= on_path_stop_min <= on_path_stop_max")
        self.min_stay = min_stay
        self.max_stay = max_stay
        self.on_path_stop_rate = on_path_stop_rate
        self.on_path_stop_min = on_path_stop_min
        self.on_path_stop_max = on_path_stop_max

    def stay_duration_at_destination(self, rng: random.Random) -> float:
        return rng.uniform(self.min_stay, self.max_stay)

    def pause_probability_per_second(self) -> float:
        return self.on_path_stop_rate

    def pause_duration(self, rng: random.Random) -> float:
        return rng.uniform(self.on_path_stop_min, self.on_path_stop_max)

    def speed_multiplier(self, rng: random.Random) -> float:
        # Mild per-leg variation so that successive legs are not identical.
        return rng.uniform(0.8, 1.0)


class VariableSpeedBehavior(Behavior):
    """Change of speed: each leg is walked at a random fraction of max speed."""

    name = "variable-speed"

    def __init__(
        self,
        min_fraction: float = 0.4,
        max_fraction: float = 1.0,
        stay_at_destination: float = 5.0,
    ) -> None:
        if not 0.0 < min_fraction <= max_fraction <= 1.0:
            raise ConfigurationError("require 0 < min_fraction <= max_fraction <= 1")
        if stay_at_destination < 0:
            raise ConfigurationError("stay_at_destination must be non-negative")
        self.min_fraction = min_fraction
        self.max_fraction = max_fraction
        self.stay_at_destination = stay_at_destination

    def stay_duration_at_destination(self, rng: random.Random) -> float:
        return self.stay_at_destination

    def speed_multiplier(self, rng: random.Random) -> float:
        return rng.uniform(self.min_fraction, self.max_fraction)


def behavior_by_name(name: str, **kwargs) -> Behavior:
    """Factory used by the configuration loader."""
    normalized = name.lower().replace("_", "-")
    if normalized in ("continuous", "continuous-walk"):
        return ContinuousWalkBehavior(**kwargs)
    if normalized in ("walk-stay", "walkstay"):
        return WalkStayBehavior(**kwargs)
    if normalized in ("variable-speed", "variablespeed"):
        return VariableSpeedBehavior(**kwargs)
    raise ConfigurationError(
        f"unknown behaviour {name!r}; expected 'continuous', 'walk-stay' or 'variable-speed'"
    )


__all__ = [
    "Behavior",
    "ContinuousWalkBehavior",
    "WalkStayBehavior",
    "VariableSpeedBehavior",
    "behavior_by_name",
]
