"""Crowd interaction between moving objects.

Section 4 of the paper notes that Vita "is designed and implemented in an
extensible way for easy integration of more advanced features in the future.
For example, to introduce the interference between moving objects, it can be
configured to use more complicated movement generation processes like a crowd
simulation model."

This module provides that extension point: a :class:`CrowdInteractionModel`
that the simulation engine consults every tick.  The default
:class:`DensitySlowdownModel` is a lightweight congestion model — the more
neighbours an object has within its personal-space radius, the slower it
walks — which captures the first-order effect of crowding (queues form in
doorways and crowded shops) without a full social-force simulation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

from repro.core.errors import ConfigurationError
from repro.core.types import FloorId
from repro.geometry.point import Point


class CrowdInteractionModel:
    """Strategy deciding how surrounding objects affect an object's speed."""

    name = "abstract"

    def speed_factor(
        self,
        floor_id: FloorId,
        position: Point,
        neighbors: Sequence[Tuple[FloorId, Point]],
    ) -> float:
        """Multiplicative speed factor in ``(0, 1]`` given nearby objects."""
        raise NotImplementedError


class NoInteraction(CrowdInteractionModel):
    """Objects ignore each other entirely (the paper's default behaviour)."""

    name = "none"

    def speed_factor(self, floor_id, position, neighbors) -> float:  # noqa: D102
        return 1.0


@dataclass
class DensitySlowdownModel(CrowdInteractionModel):
    """Congestion: walking speed drops with the number of close-by neighbours.

    Attributes:
        personal_radius: neighbours within this planar distance (metres) on the
            same floor count towards the local density.
        slowdown_per_neighbor: fractional speed loss per neighbour.
        min_factor: lower bound so heavily congested objects still creep
            forward instead of deadlocking.
    """

    personal_radius: float = 1.5
    slowdown_per_neighbor: float = 0.15
    min_factor: float = 0.2

    def __post_init__(self) -> None:
        if self.personal_radius <= 0:
            raise ConfigurationError("personal_radius must be positive")
        if not 0.0 <= self.slowdown_per_neighbor <= 1.0:
            raise ConfigurationError("slowdown_per_neighbor must be within [0, 1]")
        if not 0.0 < self.min_factor <= 1.0:
            raise ConfigurationError("min_factor must be within (0, 1]")

    name = "density-slowdown"

    def speed_factor(
        self,
        floor_id: FloorId,
        position: Point,
        neighbors: Sequence[Tuple[FloorId, Point]],
    ) -> float:
        close = 0
        radius_sq = self.personal_radius ** 2
        for other_floor, other_position in neighbors:
            if other_floor != floor_id:
                continue
            dx = other_position.x - position.x
            dy = other_position.y - position.y
            if dx * dx + dy * dy <= radius_sq:
                close += 1
        factor = 1.0 - self.slowdown_per_neighbor * close
        return max(factor, self.min_factor)


def crowd_model_by_name(name: str, **kwargs) -> CrowdInteractionModel:
    """Factory used by the configuration loader."""
    normalized = name.lower().replace("_", "-")
    if normalized in ("none", "off"):
        return NoInteraction()
    if normalized in ("density-slowdown", "density", "congestion"):
        return DensitySlowdownModel(**kwargs)
    raise ConfigurationError(
        f"unknown crowd interaction model {name!r}; expected 'none' or 'density-slowdown'"
    )


__all__ = [
    "CrowdInteractionModel",
    "NoInteraction",
    "DensitySlowdownModel",
    "crowd_model_by_name",
]
