"""Analysis: accuracy vs ground truth and dataset statistics."""

from repro.analysis.accuracy import (
    AccuracyReport,
    ProximityAccuracyReport,
    evaluate_positioning,
    evaluate_probabilistic,
    evaluate_proximity,
    ground_truth_coverage,
)
from repro.analysis.statistics import (
    CrowdingReport,
    DeploymentReport,
    TrajectoryStatistics,
    crowding_at,
    deployment_statistics,
    rssi_statistics,
    trajectory_statistics,
)

__all__ = [
    "AccuracyReport",
    "ProximityAccuracyReport",
    "evaluate_positioning",
    "evaluate_probabilistic",
    "evaluate_proximity",
    "ground_truth_coverage",
    "CrowdingReport",
    "DeploymentReport",
    "TrajectoryStatistics",
    "crowding_at",
    "deployment_statistics",
    "rssi_statistics",
    "trajectory_statistics",
]
