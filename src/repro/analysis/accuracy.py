"""Accuracy evaluation of positioning data against the preserved ground truth.

The whole point of preserving raw trajectories at a fine temporal granularity
(Section 1) is to enable effectiveness evaluations: the generated positioning
data can be compared against the ground-truth movement it was derived from.
This module implements that comparison for all three positioning data formats.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.types import (
    PositioningRecord,
    ProbabilisticPositioningRecord,
    ProximityRecord,
)
from repro.devices.base import PositioningDevice
from repro.mobility.trajectory import TrajectorySet


@dataclass
class AccuracyReport:
    """Summary of positioning error against ground truth."""

    estimates: int = 0
    matched: int = 0
    errors_m: List[float] = field(default_factory=list)
    floor_mismatches: int = 0
    partition_hits: int = 0
    partition_comparisons: int = 0

    @property
    def mean_error(self) -> float:
        """Mean planar error in metres over matched same-floor estimates."""
        return statistics.fmean(self.errors_m) if self.errors_m else float("nan")

    @property
    def median_error(self) -> float:
        """Median planar error in metres."""
        return statistics.median(self.errors_m) if self.errors_m else float("nan")

    @property
    def rmse(self) -> float:
        """Root-mean-square planar error in metres."""
        if not self.errors_m:
            return float("nan")
        return math.sqrt(statistics.fmean(error ** 2 for error in self.errors_m))

    @property
    def p90_error(self) -> float:
        """90th-percentile planar error in metres."""
        if not self.errors_m:
            return float("nan")
        ranked = sorted(self.errors_m)
        return ranked[min(int(len(ranked) * 0.9), len(ranked) - 1)]

    @property
    def floor_accuracy(self) -> float:
        """Fraction of matched estimates placed on the correct floor."""
        if self.matched == 0:
            return float("nan")
        return 1.0 - self.floor_mismatches / self.matched

    @property
    def partition_hit_rate(self) -> float:
        """Fraction of estimates whose partition matches the ground truth (room-level accuracy)."""
        if self.partition_comparisons == 0:
            return float("nan")
        return self.partition_hits / self.partition_comparisons

    def as_dict(self) -> Dict[str, float]:
        """The report as a flat dictionary (for tables and EXPERIMENTS.md)."""
        return {
            "estimates": float(self.estimates),
            "matched": float(self.matched),
            "mean_error_m": self.mean_error,
            "median_error_m": self.median_error,
            "rmse_m": self.rmse,
            "p90_error_m": self.p90_error,
            "floor_accuracy": self.floor_accuracy,
            "partition_hit_rate": self.partition_hit_rate,
        }


def evaluate_positioning(
    records: Sequence[PositioningRecord],
    ground_truth: TrajectorySet,
) -> AccuracyReport:
    """Compare deterministic positioning records against the ground truth."""
    report = AccuracyReport(estimates=len(records))
    for record in records:
        trajectory = ground_truth.get(record.object_id)
        if trajectory is None:
            continue
        true_location = trajectory.location_at(record.t)
        if true_location is None:
            continue
        report.matched += 1
        if true_location.floor_id != record.location.floor_id:
            report.floor_mismatches += 1
        elif true_location.has_point and record.location.has_point:
            report.errors_m.append(true_location.distance_to(record.location))
        if true_location.partition_id and record.location.partition_id:
            report.partition_comparisons += 1
            if true_location.partition_id == record.location.partition_id:
                report.partition_hits += 1
    return report


def evaluate_probabilistic(
    records: Sequence[ProbabilisticPositioningRecord],
    ground_truth: TrajectorySet,
) -> AccuracyReport:
    """Compare probabilistic records (using their best candidate) against ground truth."""
    collapsed = [
        PositioningRecord(
            object_id=record.object_id,
            location=record.best,
            t=record.t,
        )
        for record in records
    ]
    return evaluate_positioning(collapsed, ground_truth)


@dataclass
class ProximityAccuracyReport:
    """Accuracy of proximity detection periods against ground truth."""

    periods: int = 0
    checked_samples: int = 0
    samples_in_range: int = 0
    mean_distance_m: float = float("nan")

    @property
    def in_range_fraction(self) -> float:
        """Fraction of sampled detection instants where the object really was in range."""
        if self.checked_samples == 0:
            return float("nan")
        return self.samples_in_range / self.checked_samples

    def as_dict(self) -> Dict[str, float]:
        return {
            "periods": float(self.periods),
            "checked_samples": float(self.checked_samples),
            "in_range_fraction": self.in_range_fraction,
            "mean_distance_m": self.mean_distance_m,
        }


def evaluate_proximity(
    records: Sequence[ProximityRecord],
    ground_truth: TrajectorySet,
    devices: Sequence[PositioningDevice],
    samples_per_period: int = 3,
    range_slack: float = 1.5,
) -> ProximityAccuracyReport:
    """Check whether objects really were near the detecting device.

    For each detection period a few instants are sampled; the object's true
    distance to the device at those instants is measured.  An instant counts
    as "in range" when the distance is within ``detection_range * range_slack``
    (the slack accounts for fluctuation noise around the threshold).
    """
    device_map = {device.device_id: device for device in devices}
    report = ProximityAccuracyReport(periods=len(records))
    distances: List[float] = []
    for record in records:
        device = device_map.get(record.device_id)
        trajectory = ground_truth.get(record.object_id)
        if device is None or trajectory is None:
            continue
        duration = max(record.duration, 0.0)
        for index in range(samples_per_period):
            fraction = (index + 0.5) / samples_per_period
            t = record.t_start + duration * fraction
            true_location = trajectory.location_at(t)
            if true_location is None or not true_location.has_point:
                continue
            report.checked_samples += 1
            if true_location.floor_id != device.floor_id:
                continue
            x, y = true_location.point()
            distance = math.hypot(x - device.position.x, y - device.position.y)
            distances.append(distance)
            if distance <= device.detection_range * range_slack:
                report.samples_in_range += 1
    if distances:
        report.mean_distance_m = statistics.fmean(distances)
    return report


def ground_truth_coverage(
    positioning_times: Sequence[float],
    trajectory: "TrajectorySet",
) -> float:
    """Fraction of the ground-truth time span covered by positioning estimates.

    Low positioning sampling frequencies leave an object's whereabouts unknown
    between consecutive reports (the motivation of Section 1); this metric
    quantifies that coverage gap for a given set of estimate timestamps.
    """
    if not positioning_times:
        return 0.0
    all_records = trajectory.all_records()
    if not all_records:
        return 0.0
    t_min = min(record.t for record in all_records)
    t_max = max(record.t for record in all_records)
    if t_max <= t_min:
        return 1.0
    covered = len({int(t) for t in positioning_times if t_min <= t <= t_max})
    total_seconds = int(t_max - t_min) + 1
    return min(covered / total_seconds, 1.0)


__all__ = [
    "AccuracyReport",
    "evaluate_positioning",
    "evaluate_probabilistic",
    "ProximityAccuracyReport",
    "evaluate_proximity",
    "ground_truth_coverage",
]
