"""Descriptive statistics over generated indoor mobility datasets.

Used by the benchmark harness (feature-comparison and Figure-3 benches) and
handy for users inspecting what a generation run produced.
"""

from __future__ import annotations

import math
import statistics
from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.building.model import Building
from repro.core.types import RSSIRecord
from repro.devices.base import PositioningDevice
from repro.geometry.point import Point
from repro.mobility.trajectory import TrajectorySet
from repro.spatial import SpatialService


@dataclass
class TrajectoryStatistics:
    """Aggregate statistics of a set of raw trajectories."""

    object_count: int = 0
    total_samples: int = 0
    mean_samples_per_object: float = 0.0
    mean_duration_s: float = 0.0
    mean_length_m: float = 0.0
    mean_speed_mps: float = 0.0
    multi_floor_objects: int = 0
    partitions_visited: int = 0

    def as_dict(self) -> Dict[str, float]:
        return {
            "object_count": float(self.object_count),
            "total_samples": float(self.total_samples),
            "mean_samples_per_object": self.mean_samples_per_object,
            "mean_duration_s": self.mean_duration_s,
            "mean_length_m": self.mean_length_m,
            "mean_speed_mps": self.mean_speed_mps,
            "multi_floor_objects": float(self.multi_floor_objects),
            "partitions_visited": float(self.partitions_visited),
        }


def trajectory_statistics(trajectories: TrajectorySet) -> TrajectoryStatistics:
    """Compute aggregate statistics for *trajectories*."""
    stats = TrajectoryStatistics(object_count=len(trajectories))
    if len(trajectories) == 0:
        return stats
    durations, lengths, speeds, samples = [], [], [], []
    partitions = set()
    for trajectory in trajectories:
        samples.append(len(trajectory))
        durations.append(trajectory.duration)
        lengths.append(trajectory.length)
        speeds.append(trajectory.average_speed())
        if len(trajectory.floors_visited()) > 1:
            stats.multi_floor_objects += 1
        partitions.update(trajectory.partitions_visited())
    stats.total_samples = sum(samples)
    stats.mean_samples_per_object = statistics.fmean(samples)
    stats.mean_duration_s = statistics.fmean(durations)
    stats.mean_length_m = statistics.fmean(lengths)
    stats.mean_speed_mps = statistics.fmean(speeds)
    stats.partitions_visited = len(partitions)
    return stats


@dataclass
class CrowdingReport:
    """How concentrated the objects are across partitions at a time instant.

    Used by the Figure-3 benchmark to distinguish the crowd-outliers initial
    distribution (high concentration) from the uniform one (low concentration).
    """

    populated_partitions: int = 0
    max_share: float = 0.0
    top3_share: float = 0.0
    gini: float = 0.0
    counts: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, float]:
        return {
            "populated_partitions": float(self.populated_partitions),
            "max_share": self.max_share,
            "top3_share": self.top3_share,
            "gini": self.gini,
        }


def crowding_at(trajectories: TrajectorySet, t: float) -> CrowdingReport:
    """Concentration of objects over partitions at time *t*."""
    snapshot = trajectories.snapshot(t)
    counts = Counter(
        location.partition_id for location in snapshot.values() if location.partition_id
    )
    report = CrowdingReport(counts=dict(counts))
    total = sum(counts.values())
    if total == 0:
        return report
    ranked = sorted(counts.values(), reverse=True)
    report.populated_partitions = len(ranked)
    report.max_share = ranked[0] / total
    report.top3_share = sum(ranked[:3]) / total
    report.gini = _gini(ranked)
    return report


def _gini(values: Sequence[int]) -> float:
    """Gini coefficient of a non-negative count distribution."""
    values = sorted(values)
    n = len(values)
    total = sum(values)
    if n == 0 or total == 0:
        return 0.0
    cumulative = 0.0
    for index, value in enumerate(values, start=1):
        cumulative += index * value
    return (2.0 * cumulative) / (n * total) - (n + 1.0) / n


@dataclass
class DeploymentReport:
    """Spatial characteristics of a device deployment.

    Used by the Figure-3 benchmark: the coverage model should show larger
    minimum pairwise separation and smaller mean distance-to-wall than the
    check-point model, which instead concentrates devices near doors.
    """

    device_count: int = 0
    mean_pairwise_distance: float = 0.0
    min_pairwise_distance: float = 0.0
    mean_distance_to_wall: float = 0.0
    mean_distance_to_nearest_door: float = 0.0
    covered_area_fraction: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "device_count": float(self.device_count),
            "mean_pairwise_distance": self.mean_pairwise_distance,
            "min_pairwise_distance": self.min_pairwise_distance,
            "mean_distance_to_wall": self.mean_distance_to_wall,
            "mean_distance_to_nearest_door": self.mean_distance_to_nearest_door,
            "covered_area_fraction": self.covered_area_fraction,
        }


def deployment_statistics(
    building: Building,
    devices: Sequence[PositioningDevice],
    floor_id: int,
    coverage_samples: int = 400,
    spatial: Optional[SpatialService] = None,
) -> DeploymentReport:
    """Characterise the devices deployed on *floor_id*.

    Nearest-wall / nearest-door distances are answered by the (shared or
    private) :class:`~repro.spatial.SpatialService` R-tree indices instead
    of an O(walls) / O(doors) ``min()`` scan per position.
    """
    floor_devices = [device for device in devices if device.floor_id == floor_id]
    report = DeploymentReport(device_count=len(floor_devices))
    if not floor_devices:
        return report
    floor = building.floor(floor_id)
    service = spatial if spatial is not None else SpatialService(building)
    positions = [device.position for device in floor_devices]
    # Pairwise separation.
    pairwise = [
        positions[i].distance_to(positions[j])
        for i in range(len(positions))
        for j in range(i + 1, len(positions))
    ]
    if pairwise:
        report.mean_pairwise_distance = statistics.fmean(pairwise)
        report.min_pairwise_distance = min(pairwise)
    # Distance to the nearest wall and to the nearest door.
    wall_distances, door_distances = [], []
    for position in positions:
        wall_distance = service.nearest_wall_distance(floor_id, position)
        if math.isfinite(wall_distance):
            wall_distances.append(wall_distance)
        door_distance = service.nearest_door_distance(floor_id, position)
        if math.isfinite(door_distance):
            door_distances.append(door_distance)
    if wall_distances:
        report.mean_distance_to_wall = statistics.fmean(wall_distances)
    if door_distances:
        report.mean_distance_to_nearest_door = statistics.fmean(door_distances)
    # Fraction of walkable area covered by at least one device's range.
    import random as _random

    rng = _random.Random(13)
    covered = 0
    for _ in range(coverage_samples):
        partition = floor.random_partition(rng)
        point = partition.random_point(rng)
        if any(
            device.position.distance_to(point) <= device.detection_range
            for device in floor_devices
        ):
            covered += 1
    report.covered_area_fraction = covered / coverage_samples
    return report


def rssi_statistics(records: Sequence[RSSIRecord]) -> Dict[str, float]:
    """Overall statistics of a raw RSSI dataset."""
    if not records:
        return {"count": 0.0, "mean": float("nan"), "min": float("nan"), "max": float("nan")}
    values = [record.rssi for record in records]
    return {
        "count": float(len(values)),
        "mean": statistics.fmean(values),
        "min": min(values),
        "max": max(values),
        "stdev": statistics.pstdev(values),
    }


__all__ = [
    "TrajectoryStatistics",
    "trajectory_statistics",
    "CrowdingReport",
    "crowding_at",
    "DeploymentReport",
    "deployment_statistics",
    "rssi_statistics",
]
