"""RSSI generation: path loss model, noise models, measurement controller."""

from repro.rssi.pathloss import MIN_TRANSMISSION_DISTANCE, PathLossModel, default_model_for
from repro.rssi.noise import FluctuationNoiseModel, ObstacleNoiseModel
from repro.rssi.measurement import RSSIGenerationConfig, RSSIGenerator
from repro.rssi.controller import RSSIMeasurementController

__all__ = [
    "MIN_TRANSMISSION_DISTANCE",
    "PathLossModel",
    "default_model_for",
    "FluctuationNoiseModel",
    "ObstacleNoiseModel",
    "RSSIGenerationConfig",
    "RSSIGenerator",
    "RSSIMeasurementController",
]
