"""RSSI Measurement Controller.

"The RSSI Measurement Controller allows a user to set RSSI data generation
parameters including the path loss model, the noise model, etc." (Section 2).
It wraps :class:`~repro.rssi.measurement.RSSIGenerator` with a configuration
object and keeps the generated raw RSSI data for the Positioning Layer.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.building.model import Building
from repro.core.types import RSSIRecord
from repro.devices.base import PositioningDevice
from repro.mobility.trajectory import TrajectorySet
from repro.rssi.measurement import RSSIGenerationConfig, RSSIGenerator
from repro.rssi.noise import FluctuationNoiseModel, ObstacleNoiseModel
from repro.rssi.pathloss import PathLossModel


class RSSIMeasurementController:
    """Configures and drives raw RSSI data generation."""

    def __init__(
        self,
        building: Building,
        devices: Sequence[PositioningDevice],
        config: Optional[RSSIGenerationConfig] = None,
    ) -> None:
        self.building = building
        self.devices = list(devices)
        self.config = config or RSSIGenerationConfig()
        self.generator = RSSIGenerator(building, self.devices, self.config)
        self.records: List[RSSIRecord] = []

    # ------------------------------------------------------------------ #
    # Configuration helpers
    # ------------------------------------------------------------------ #
    def set_path_loss(self, exponent: float, calibration_rssi: float) -> None:
        """Override the path loss parameters for every device."""
        self.config.path_loss = PathLossModel(
            exponent=exponent, calibration_rssi=calibration_rssi
        )
        self.generator = RSSIGenerator(self.building, self.devices, self.config)

    def set_noise(
        self,
        wall_attenuation_db: Optional[float] = None,
        fluctuation_sigma_db: Optional[float] = None,
    ) -> None:
        """Adjust the obstacle / fluctuation noise models."""
        if wall_attenuation_db is not None:
            self.config.obstacle_noise = ObstacleNoiseModel(
                wall_attenuation_db=wall_attenuation_db,
                obstacle_attenuation_db=self.config.obstacle_noise.obstacle_attenuation_db,
                max_attenuation_db=self.config.obstacle_noise.max_attenuation_db,
                non_line_of_sight_extra_db=self.config.obstacle_noise.non_line_of_sight_extra_db,
            )
        if fluctuation_sigma_db is not None:
            self.config.fluctuation_noise = FluctuationNoiseModel(sigma_db=fluctuation_sigma_db)
        self.generator = RSSIGenerator(self.building, self.devices, self.config)

    def set_sampling_period(self, period: float) -> None:
        """Change the RSSI sampling period (seconds)."""
        self.config.sampling_period = period
        self.generator = RSSIGenerator(self.building, self.devices, self.config)

    # ------------------------------------------------------------------ #
    # Generation
    # ------------------------------------------------------------------ #
    def generate(self, trajectories: TrajectorySet) -> List[RSSIRecord]:
        """Generate (and keep) raw RSSI data for *trajectories*."""
        self.records = self.generator.generate(trajectories)
        return self.records

    @property
    def record_count(self) -> int:
        """Number of raw RSSI records generated so far."""
        return len(self.records)


__all__ = ["RSSIMeasurementController"]
