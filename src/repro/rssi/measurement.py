"""Raw RSSI measurement generation.

The RSSI Measurement Controller of the Positioning Layer samples the raw
trajectory data at its own sampling frequency and, for every (object, device)
pair in range, produces a raw RSSI record ``(o_id, d_id, rssi, t)`` according
to the path loss model plus the obstacle and fluctuation noise models
(Section 3.2).

The same machinery also "collects fingerprints": generating repeated
measurements for a stationary reference location is exactly what the
fingerprinting radio-map construction of Section 3.3 (2) requires.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from repro.building.model import Building
from repro.core.errors import ConfigurationError
from repro.core.types import RSSIRecord, Timestamp
from repro.devices.base import PositioningDevice
from repro.geometry.point import Point
from repro.mobility.trajectory import TrajectorySet
from repro.rssi.noise import FluctuationNoiseModel, ObstacleNoiseModel
from repro.rssi.pathloss import PathLossModel, default_model_for
from repro.spatial import SpatialService


@dataclass
class RSSIGenerationConfig:
    """Parameters of the raw RSSI data generation.

    Attributes:
        sampling_period: seconds between consecutive RSSI sampling rounds
            (independent of the trajectory sampling frequency).
        path_loss: overrides the per-device path loss parameters when given;
            otherwise each device uses its own radio defaults.
        obstacle_noise: the ``Nob`` model.
        fluctuation_noise: the ``Nf`` model.
        range_factor: measurements are produced while the object lies within
            ``detection_range * range_factor`` of the device (signals fade
            rather than cut off exactly at the nominal range).
        detection_probability: probability that a device in range actually
            reports a measurement in a given round (packet loss).
        seed: seed for reproducible noise.
    """

    sampling_period: float = 2.0
    path_loss: Optional[PathLossModel] = None
    obstacle_noise: ObstacleNoiseModel = field(default_factory=ObstacleNoiseModel)
    fluctuation_noise: FluctuationNoiseModel = field(default_factory=FluctuationNoiseModel)
    range_factor: float = 1.0
    detection_probability: float = 0.95
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.sampling_period <= 0:
            raise ConfigurationError("sampling_period must be positive")
        if self.range_factor <= 0:
            raise ConfigurationError("range_factor must be positive")
        if not 0.0 < self.detection_probability <= 1.0:
            raise ConfigurationError("detection_probability must be in (0, 1]")


class RSSIGenerator:
    """Generates raw RSSI measurements from trajectories and devices."""

    def __init__(
        self,
        building: Building,
        devices: Sequence[PositioningDevice],
        config: Optional[RSSIGenerationConfig] = None,
        spatial: Optional[SpatialService] = None,
    ) -> None:
        """*spatial* shares a building-wide
        :class:`~repro.spatial.SpatialService` (LOS cache, device index)
        with the other layers; a private one is created when omitted."""
        self.building = building
        self.devices = list(devices)
        self.config = config or RSSIGenerationConfig()
        self.rng = random.Random(self.config.seed)
        self.spatial = spatial if spatial is not None else SpatialService(building)
        self._models: Dict[str, PathLossModel] = {
            device.device_id: (self.config.path_loss or default_model_for(device))
            for device in self.devices
        }
        if not self.spatial.devices:
            self.spatial.attach_devices(self.devices)
        self._device_key = tuple(device.device_id for device in self.devices)
        self._index_decision_epoch: Optional[int] = None
        self._use_device_index = False

    # ------------------------------------------------------------------ #
    # Core measurement primitives
    # ------------------------------------------------------------------ #
    def measure(
        self,
        device: PositioningDevice,
        floor_id: int,
        point: Point,
    ) -> Optional[float]:
        """One RSSI measurement of an object at (*floor_id*, *point*), or ``None``.

        ``None`` is returned when the object is on a different floor, outside
        the device's (extended) range, or the packet is lost.
        """
        if floor_id != device.floor_id:
            return None
        distance = device.distance_to(point)
        if distance > device.detection_range * self.config.range_factor:
            return None
        if self.rng.random() > self.config.detection_probability:
            return None
        model = self._models[device.device_id]
        rssi = model.rssi_at(distance)
        report = self.spatial.sightline(floor_id, device.position, point)
        rssi += self.config.obstacle_noise.attenuation_from_report(report)
        rssi += self.config.fluctuation_noise.sample(self.rng)
        return rssi

    def _candidate_devices(self, floor_id: int, point: Point) -> Sequence[PositioningDevice]:
        """Devices that could observe (*floor_id*, *point*), in deployment order.

        A superset of the devices :meth:`measure` will accept, found through
        the spatial service's device index instead of a full scan.  Order
        matters: the RNG draws (packet loss, fluctuation noise) happen per
        accepted device, so iterating the superset in deployment order keeps
        the noise stream — and therefore the output — identical to scanning
        ``self.devices`` directly.
        """
        if not self._index_usable():
            return self.devices
        radius = self.spatial.max_device_range(floor_id) * self.config.range_factor
        return self.spatial.candidate_devices(floor_id, point, radius)

    def _index_usable(self) -> bool:
        """Whether the service indexes exactly this generator's devices.

        A shared service may be re-pointed at a different deployment by
        another consumer (``attach_devices``); the decision is re-validated
        whenever the service's ``device_epoch`` changes — an O(1) check on
        the hot path, an O(devices) comparison only after a change.
        """
        epoch = self.spatial.device_epoch
        if epoch != self._index_decision_epoch:
            self._index_decision_epoch = epoch
            self._use_device_index = (
                tuple(device.device_id for device in self.spatial.devices)
                == self._device_key
            )
        return self._use_device_index

    def measure_all(
        self, floor_id: int, point: Point, object_id: str, t: Timestamp
    ) -> List[RSSIRecord]:
        """RSSI records from every device that observes the given position."""
        records: List[RSSIRecord] = []
        for device in self._candidate_devices(floor_id, point):
            rssi = self.measure(device, floor_id, point)
            if rssi is not None:
                records.append(
                    RSSIRecord(object_id=object_id, device_id=device.device_id, rssi=rssi, t=t)
                )
        return records

    # ------------------------------------------------------------------ #
    # Trajectory-driven generation
    # ------------------------------------------------------------------ #
    def iter_trajectory_records(self, trajectory) -> Iterator[RSSIRecord]:
        """Raw RSSI records of one trajectory, in sampling-time order.

        The building block of both :meth:`generate` (which collects and
        globally sorts) and :meth:`iter_generate` (which streams without
        materialising the full dataset).
        """
        if trajectory.is_empty:
            return
        period = self.config.sampling_period
        t = trajectory.start_time
        while t <= trajectory.end_time + 1e-9:
            location = trajectory.location_at(min(t, trajectory.end_time))
            if location is not None and location.has_point:
                x, y = location.point()
                yield from self.measure_all(
                    location.floor_id, Point(x, y), trajectory.object_id, round(t, 6)
                )
            t += period

    def iter_generate(self, trajectories: TrajectorySet) -> Iterator[RSSIRecord]:
        """Stream raw RSSI records trajectory by trajectory (bounded memory).

        Records arrive trajectory-major (every record of one object before
        the next object), each object's records in time order.  Use
        :meth:`generate` when the globally time-sorted dataset is needed.
        """
        for trajectory in trajectories:
            yield from self.iter_trajectory_records(trajectory)

    def generate(self, trajectories: TrajectorySet) -> List[RSSIRecord]:
        """Raw RSSI data for every object, sampled at the RSSI sampling period."""
        records = list(self.iter_generate(trajectories))
        records.sort(key=lambda record: (record.t, record.object_id, record.device_id))
        return records

    # ------------------------------------------------------------------ #
    # Fingerprint collection (site survey simulation)
    # ------------------------------------------------------------------ #
    def collect_fingerprint(
        self,
        floor_id: int,
        point: Point,
        samples: int = 10,
    ) -> Dict[str, List[float]]:
        """Repeated measurements at a stationary reference location.

        Returns a mapping ``device_id -> list of RSSI samples`` (devices that
        never observe the location are omitted).
        """
        if samples <= 0:
            raise ConfigurationError("samples must be positive")
        observations: Dict[str, List[float]] = {}
        # The survey point is stationary: resolve the candidate devices once
        # and let the spatial LOS cache serve every repeated sight line.
        candidates = self._candidate_devices(floor_id, point)
        for _ in range(samples):
            for device in candidates:
                rssi = self.measure(device, floor_id, point)
                if rssi is not None:
                    observations.setdefault(device.device_id, []).append(rssi)
        return observations


__all__ = ["RSSIGenerationConfig", "RSSIGenerator"]
