"""Raw RSSI measurement generation.

The RSSI Measurement Controller of the Positioning Layer samples the raw
trajectory data at its own sampling frequency and, for every (object, device)
pair in range, produces a raw RSSI record ``(o_id, d_id, rssi, t)`` according
to the path loss model plus the obstacle and fluctuation noise models
(Section 3.2).

The same machinery also "collects fingerprints": generating repeated
measurements for a stationary reference location is exactly what the
fingerprinting radio-map construction of Section 3.3 (2) requires.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from repro.building.model import Building
from repro.core.errors import ConfigurationError
from repro.core.types import RSSIRecord, Timestamp
from repro.devices.base import PositioningDevice
from repro.geometry.point import Point
from repro.mobility.trajectory import TrajectorySet
from repro.rssi.noise import FluctuationNoiseModel, ObstacleNoiseModel
from repro.rssi.pathloss import PathLossModel, default_model_for


@dataclass
class RSSIGenerationConfig:
    """Parameters of the raw RSSI data generation.

    Attributes:
        sampling_period: seconds between consecutive RSSI sampling rounds
            (independent of the trajectory sampling frequency).
        path_loss: overrides the per-device path loss parameters when given;
            otherwise each device uses its own radio defaults.
        obstacle_noise: the ``Nob`` model.
        fluctuation_noise: the ``Nf`` model.
        range_factor: measurements are produced while the object lies within
            ``detection_range * range_factor`` of the device (signals fade
            rather than cut off exactly at the nominal range).
        detection_probability: probability that a device in range actually
            reports a measurement in a given round (packet loss).
        seed: seed for reproducible noise.
    """

    sampling_period: float = 2.0
    path_loss: Optional[PathLossModel] = None
    obstacle_noise: ObstacleNoiseModel = field(default_factory=ObstacleNoiseModel)
    fluctuation_noise: FluctuationNoiseModel = field(default_factory=FluctuationNoiseModel)
    range_factor: float = 1.0
    detection_probability: float = 0.95
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.sampling_period <= 0:
            raise ConfigurationError("sampling_period must be positive")
        if self.range_factor <= 0:
            raise ConfigurationError("range_factor must be positive")
        if not 0.0 < self.detection_probability <= 1.0:
            raise ConfigurationError("detection_probability must be in (0, 1]")


class RSSIGenerator:
    """Generates raw RSSI measurements from trajectories and devices."""

    def __init__(
        self,
        building: Building,
        devices: Sequence[PositioningDevice],
        config: Optional[RSSIGenerationConfig] = None,
    ) -> None:
        self.building = building
        self.devices = list(devices)
        self.config = config or RSSIGenerationConfig()
        self.rng = random.Random(self.config.seed)
        self._walls_cache: Dict[int, list] = {}
        self._obstacles_cache: Dict[int, list] = {}
        self._models: Dict[str, PathLossModel] = {
            device.device_id: (self.config.path_loss or default_model_for(device))
            for device in self.devices
        }

    # ------------------------------------------------------------------ #
    # Core measurement primitives
    # ------------------------------------------------------------------ #
    def measure(
        self,
        device: PositioningDevice,
        floor_id: int,
        point: Point,
    ) -> Optional[float]:
        """One RSSI measurement of an object at (*floor_id*, *point*), or ``None``.

        ``None`` is returned when the object is on a different floor, outside
        the device's (extended) range, or the packet is lost.
        """
        if floor_id != device.floor_id:
            return None
        distance = device.distance_to(point)
        if distance > device.detection_range * self.config.range_factor:
            return None
        if self.rng.random() > self.config.detection_probability:
            return None
        model = self._models[device.device_id]
        rssi = model.rssi_at(distance)
        rssi += self.config.obstacle_noise.attenuation(
            device.position,
            point,
            self._walls(floor_id),
            self._obstacles(floor_id),
        )
        rssi += self.config.fluctuation_noise.sample(self.rng)
        return rssi

    def measure_all(
        self, floor_id: int, point: Point, object_id: str, t: Timestamp
    ) -> List[RSSIRecord]:
        """RSSI records from every device that observes the given position."""
        records: List[RSSIRecord] = []
        for device in self.devices:
            rssi = self.measure(device, floor_id, point)
            if rssi is not None:
                records.append(
                    RSSIRecord(object_id=object_id, device_id=device.device_id, rssi=rssi, t=t)
                )
        return records

    # ------------------------------------------------------------------ #
    # Trajectory-driven generation
    # ------------------------------------------------------------------ #
    def iter_trajectory_records(self, trajectory) -> Iterator[RSSIRecord]:
        """Raw RSSI records of one trajectory, in sampling-time order.

        The building block of both :meth:`generate` (which collects and
        globally sorts) and :meth:`iter_generate` (which streams without
        materialising the full dataset).
        """
        if trajectory.is_empty:
            return
        period = self.config.sampling_period
        t = trajectory.start_time
        while t <= trajectory.end_time + 1e-9:
            location = trajectory.location_at(min(t, trajectory.end_time))
            if location is not None and location.has_point:
                x, y = location.point()
                yield from self.measure_all(
                    location.floor_id, Point(x, y), trajectory.object_id, round(t, 6)
                )
            t += period

    def iter_generate(self, trajectories: TrajectorySet) -> Iterator[RSSIRecord]:
        """Stream raw RSSI records trajectory by trajectory (bounded memory).

        Records arrive trajectory-major (every record of one object before
        the next object), each object's records in time order.  Use
        :meth:`generate` when the globally time-sorted dataset is needed.
        """
        for trajectory in trajectories:
            yield from self.iter_trajectory_records(trajectory)

    def generate(self, trajectories: TrajectorySet) -> List[RSSIRecord]:
        """Raw RSSI data for every object, sampled at the RSSI sampling period."""
        records = list(self.iter_generate(trajectories))
        records.sort(key=lambda record: (record.t, record.object_id, record.device_id))
        return records

    # ------------------------------------------------------------------ #
    # Fingerprint collection (site survey simulation)
    # ------------------------------------------------------------------ #
    def collect_fingerprint(
        self,
        floor_id: int,
        point: Point,
        samples: int = 10,
    ) -> Dict[str, List[float]]:
        """Repeated measurements at a stationary reference location.

        Returns a mapping ``device_id -> list of RSSI samples`` (devices that
        never observe the location are omitted).
        """
        if samples <= 0:
            raise ConfigurationError("samples must be positive")
        observations: Dict[str, List[float]] = {}
        for _ in range(samples):
            for device in self.devices:
                rssi = self.measure(device, floor_id, point)
                if rssi is not None:
                    observations.setdefault(device.device_id, []).append(rssi)
        return observations

    # ------------------------------------------------------------------ #
    # Caches
    # ------------------------------------------------------------------ #
    def _walls(self, floor_id: int) -> list:
        if floor_id not in self._walls_cache:
            self._walls_cache[floor_id] = self.building.floor(floor_id).wall_segments()
        return self._walls_cache[floor_id]

    def _obstacles(self, floor_id: int) -> list:
        if floor_id not in self._obstacles_cache:
            self._obstacles_cache[floor_id] = self.building.floor(floor_id).obstacle_polygons()
        return self._obstacles_cache[floor_id]


__all__ = ["RSSIGenerationConfig", "RSSIGenerator"]
