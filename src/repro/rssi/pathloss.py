"""The log-distance path loss model used to synthesise RSSI measurements.

Section 3.2: "We implement a generic, flexible path loss model as
``rssi(dBm) = -10 n log10(dt) + A + Nob + Nf``.  Specifically, ``rssi`` is the
measured value; ``dt`` is the present transmission distance between the
positioning device and the observed object.  We allow users to define three
variables: ``A`` is a calibration RSSI value measured at 1 meter, ``Nob`` is
the noise caused by influence of obstacles like walls and doors, and ``Nf`` is
the noise for signal fluctuation related to temperature, humidity, etc; a
default setting of these variables is provided for a quick customization."

The deterministic part (the first two terms) lives here; the two noise terms
are supplied by :mod:`repro.rssi.noise` so they can be swapped independently.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.errors import ConfigurationError

#: Transmission distances below this are clamped so that ``log10`` stays finite.
MIN_TRANSMISSION_DISTANCE = 0.1


@dataclass(frozen=True)
class PathLossModel:
    """The deterministic log-distance path loss curve.

    Attributes:
        exponent: the path loss exponent ``n`` (2.0 in free space, typically
            2.5–4 indoors).
        calibration_rssi: ``A``, the RSSI measured at 1 metre, in dBm.
    """

    exponent: float = 2.5
    calibration_rssi: float = -40.0

    def __post_init__(self) -> None:
        if self.exponent <= 0:
            raise ConfigurationError("path loss exponent must be positive")

    def rssi_at(self, distance: float) -> float:
        """Noise-free RSSI (dBm) at transmission distance *distance* (metres)."""
        distance = max(distance, MIN_TRANSMISSION_DISTANCE)
        return -10.0 * self.exponent * math.log10(distance) + self.calibration_rssi

    def distance_from_rssi(self, rssi: float) -> float:
        """Invert the noise-free curve: distance (metres) producing *rssi*.

        This is the default "RSSI conversion function" offered to
        trilateration users (Section 3.3 (1)).
        """
        exponent_value = (self.calibration_rssi - rssi) / (10.0 * self.exponent)
        return max(10.0 ** exponent_value, MIN_TRANSMISSION_DISTANCE)

    def with_parameters(self, exponent: float = None, calibration_rssi: float = None) -> "PathLossModel":
        """Copy of the model with selected parameters replaced."""
        return PathLossModel(
            exponent=self.exponent if exponent is None else exponent,
            calibration_rssi=(
                self.calibration_rssi if calibration_rssi is None else calibration_rssi
            ),
        )


def default_model_for(device) -> PathLossModel:
    """Path loss model parameterised from a device's radio defaults."""
    return PathLossModel(
        exponent=device.path_loss_exponent,
        calibration_rssi=device.tx_power_dbm,
    )


__all__ = ["MIN_TRANSMISSION_DISTANCE", "PathLossModel", "default_model_for"]
