"""Noise models for RSSI generation.

Two noise terms are added to the deterministic path loss curve
(Section 3.2):

* ``Nob`` — obstacle noise: attenuation caused by walls, doors and deployed
  obstacles between the device and the object.  Figure 3(a) illustrates the
  effect: at equal transmission distance, the device whose line of sight is
  blocked by walls measures a weaker RSSI.
* ``Nf`` — fluctuation noise: signal fluctuation "related to temperature,
  humidity, etc.", modelled as zero-mean Gaussian noise.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.errors import ConfigurationError
from repro.geometry.line_of_sight import analyze_sightline
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.segment import Segment


@dataclass
class ObstacleNoiseModel:
    """``Nob``: attenuation from walls and obstacles crossing the sight line.

    Attributes:
        wall_attenuation_db: loss per crossed wall segment.
        obstacle_attenuation_db: default loss per crossed obstacle polygon
            (an obstacle's own ``attenuation_db`` takes precedence when the
            noise is computed through :meth:`attenuation_from_counts`).
        max_attenuation_db: cap on the total obstacle attenuation; beyond a
            handful of walls the signal is effectively floor-limited.
        non_line_of_sight_extra_db: extra loss applied once at least one wall
            blocks the path (multi-path / NLOS penalty).
    """

    wall_attenuation_db: float = 3.5
    obstacle_attenuation_db: float = 4.0
    max_attenuation_db: float = 25.0
    non_line_of_sight_extra_db: float = 2.0

    def __post_init__(self) -> None:
        if self.wall_attenuation_db < 0 or self.obstacle_attenuation_db < 0:
            raise ConfigurationError("attenuation values must be non-negative")
        if self.max_attenuation_db < 0:
            raise ConfigurationError("max_attenuation_db must be non-negative")

    def attenuation_from_counts(self, wall_crossings: int, obstacle_crossings: int) -> float:
        """``Nob`` (a non-positive dB value) from crossing counts."""
        total = (
            wall_crossings * self.wall_attenuation_db
            + obstacle_crossings * self.obstacle_attenuation_db
        )
        if wall_crossings + obstacle_crossings > 0:
            total += self.non_line_of_sight_extra_db
        return -min(total, self.max_attenuation_db)

    def attenuation_from_report(self, report) -> float:
        """``Nob`` from a precomputed :class:`SightlineReport`.

        Lets callers reuse a cached sightline analysis (e.g. from the
        :class:`~repro.spatial.SpatialService` LOS cache) instead of
        re-scanning walls per measurement.
        """
        return self.attenuation_from_counts(report.wall_crossings, report.obstacle_crossings)

    def attenuation(
        self,
        origin: Point,
        target: Point,
        walls: Sequence[Segment] = (),
        obstacles: Sequence[Polygon] = (),
    ) -> float:
        """``Nob`` for the sight line between *origin* and *target*."""
        report = analyze_sightline(origin, target, walls, obstacles)
        return self.attenuation_from_report(report)


@dataclass
class FluctuationNoiseModel:
    """``Nf``: zero-mean Gaussian signal fluctuation."""

    sigma_db: float = 2.0

    def __post_init__(self) -> None:
        if self.sigma_db < 0:
            raise ConfigurationError("sigma_db must be non-negative")

    def sample(self, rng: Optional[random.Random] = None) -> float:
        """Draw one fluctuation value (dB)."""
        if self.sigma_db == 0:
            return 0.0
        rng = rng or random
        return rng.gauss(0.0, self.sigma_db)


__all__ = ["ObstacleNoiseModel", "FluctuationNoiseModel"]
