"""Text-based visualisation of floor plans and object snapshots."""

from repro.viz.ascii_map import AsciiFloorRenderer, render_building, render_floor

__all__ = ["AsciiFloorRenderer", "render_building", "render_floor"]
