"""ASCII rendering of floor plans, devices and object snapshots.

The GUI prototype (Figure 4) renders parsed DBI entities into a map view and
visualises object movements in real time.  The library equivalent is a plain
text rendering that the examples print to the terminal: partitions are drawn
as their boundary walls, doors as ``+``, devices as ``D`` and moving objects
as ``o`` (``*`` where several objects overlap in one character cell).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.building.model import Building, Floor
from repro.core.types import IndoorLocation
from repro.devices.base import PositioningDevice
from repro.geometry.point import Point


class AsciiFloorRenderer:
    """Renders one floor of a building as a character grid."""

    def __init__(self, building: Building, floor_id: int, width: int = 100, height: int = 32) -> None:
        self.building = building
        self.floor: Floor = building.floor(floor_id)
        self.width = max(20, width)
        self.height = max(10, height)
        box = self.floor.bounding_box
        self._min_x, self._min_y = box.min_x, box.min_y
        self._scale_x = (self.width - 1) / max(box.width, 1e-6)
        self._scale_y = (self.height - 1) / max(box.height, 1e-6)

    # ------------------------------------------------------------------ #
    # Coordinate mapping
    # ------------------------------------------------------------------ #
    def to_cell(self, point: Point) -> tuple:
        """Map a floor coordinate to a (row, column) grid cell."""
        column = int(round((point.x - self._min_x) * self._scale_x))
        # Rows grow downwards in terminal output, so invert the y axis.
        row = self.height - 1 - int(round((point.y - self._min_y) * self._scale_y))
        column = min(max(column, 0), self.width - 1)
        row = min(max(row, 0), self.height - 1)
        return row, column

    # ------------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------------ #
    def render(
        self,
        devices: Sequence[PositioningDevice] = (),
        objects: Optional[Dict[str, IndoorLocation]] = None,
        show_labels: bool = True,
    ) -> str:
        """Render the floor with optional devices and an object snapshot."""
        grid: List[List[str]] = [[" "] * self.width for _ in range(self.height)]
        self._draw_walls(grid)
        self._draw_doors(grid)
        if show_labels:
            self._draw_labels(grid)
        for device in devices:
            if device.floor_id != self.floor.floor_id:
                continue
            row, column = self.to_cell(device.position)
            grid[row][column] = "D"
        if objects:
            for location in objects.values():
                if location.floor_id != self.floor.floor_id or not location.has_point:
                    continue
                x, y = location.point()
                row, column = self.to_cell(Point(x, y))
                grid[row][column] = "*" if grid[row][column] == "o" else "o"
        header = (
            f"{self.building.name} — floor {self.floor.floor_id} "
            f"({len(self.floor.partitions)} partitions, {len(self.floor.doors)} doors)"
        )
        lines = [header, "=" * min(len(header), self.width)]
        lines.extend("".join(row) for row in grid)
        return "\n".join(lines)

    def _draw_walls(self, grid: List[List[str]]) -> None:
        for wall in self.floor.walls():
            segment = wall.segment
            steps = max(int(segment.length * max(self._scale_x, self._scale_y)) * 2, 2)
            for index in range(steps + 1):
                point = segment.point_at(index / steps)
                row, column = self.to_cell(point)
                grid[row][column] = "#"

    def _draw_doors(self, grid: List[List[str]]) -> None:
        for door in self.floor.doors.values():
            row, column = self.to_cell(door.position)
            grid[row][column] = "+"

    def _draw_labels(self, grid: List[List[str]]) -> None:
        for partition in self.floor.partitions.values():
            label = partition.partition_id.split("_")[-1][:6]
            row, column = self.to_cell(partition.centroid)
            for offset, character in enumerate(label):
                target = column + offset - len(label) // 2
                if 0 <= target < self.width and grid[row][target] == " ":
                    grid[row][target] = character


def render_floor(
    building: Building,
    floor_id: int,
    devices: Sequence[PositioningDevice] = (),
    objects: Optional[Dict[str, IndoorLocation]] = None,
    width: int = 100,
    height: int = 32,
) -> str:
    """One-call convenience wrapper around :class:`AsciiFloorRenderer`."""
    renderer = AsciiFloorRenderer(building, floor_id, width=width, height=height)
    return renderer.render(devices=devices, objects=objects)


def render_building(
    building: Building,
    devices: Sequence[PositioningDevice] = (),
    objects: Optional[Dict[str, IndoorLocation]] = None,
    width: int = 100,
    height: int = 24,
) -> str:
    """Render every floor of the building, bottom-up."""
    sections = []
    for floor_id in building.floor_ids:
        sections.append(render_floor(building, floor_id, devices, objects, width, height))
    return "\n\n".join(sections)


__all__ = ["AsciiFloorRenderer", "render_floor", "render_building"]
